"""Grid occupancy/pruning analytics."""

import numpy as np
import pytest

from repro.data.generators import anticorrelated, clustered, independent
from repro.errors import GridError
from repro.grid.analysis import analyze_grid, ppd_sweep
from repro.grid.grid import Grid


class TestAnalyzeGrid:
    def test_basic_accounting(self, rng):
        data = independent(2000, 2, seed=4)
        grid = Grid.unit(8, 2)
        analysis = analyze_grid(grid, data)
        assert analysis.cardinality == 2000
        assert 0 < analysis.occupied <= 64
        assert analysis.surviving <= analysis.occupied
        assert analysis.pruned_partitions == (
            analysis.occupied - analysis.surviving
        )
        assert 0 <= analysis.fill_factor <= 1

    def test_tuples_in_pruned_consistent(self):
        data = independent(3000, 2, seed=5)
        grid = Grid.unit(8, 2)
        analysis = analyze_grid(grid, data)
        # the pruned tuples are exactly those in pruned cells
        from repro.grid.bitstring import Bitstring

        occ = Bitstring.from_data(grid, data)
        pruned = occ.prune_dominated()
        cells = grid.cell_indices(data)
        expect = sum(
            1 for c in cells if occ[int(c)] and not pruned[int(c)]
        )
        assert analysis.tuples_in_pruned == expect
        assert analysis.pruned_tuple_fraction == pytest.approx(
            expect / 3000
        )

    def test_uniform_data_surviving_bound(self):
        """With dense occupancy, survivors ≈ rho_rem (never above
        occupied count; rho_rem is the fully-occupied exact value)."""
        data = independent(20000, 2, seed=6)
        grid = Grid.unit(8, 2)
        analysis = analyze_grid(grid, data)
        assert analysis.occupied == 64  # dense
        assert analysis.surviving == analysis.predicted_surviving_upper

    def test_group_metrics(self):
        data = anticorrelated(2000, 2, seed=7)
        analysis = analyze_grid(Grid.unit(6, 2), data)
        assert analysis.num_groups >= 1
        assert analysis.largest_group >= 1
        assert analysis.replicated_partitions >= 0

    def test_clustered_fill_lower_than_uniform(self):
        grid = Grid.unit(8, 2)
        uniform = analyze_grid(grid, independent(2000, 2, seed=8))
        lumpy = analyze_grid(
            grid, clustered(2000, 2, seed=8, num_clusters=3)
        )
        assert lumpy.fill_factor < uniform.fill_factor

    def test_empty_dataset(self):
        analysis = analyze_grid(Grid.unit(4, 2), np.empty((0, 2)))
        assert analysis.occupied == 0
        assert analysis.pruned_tuple_fraction == 0.0
        assert analysis.num_groups == 0

    def test_dimension_mismatch(self):
        with pytest.raises(GridError):
            analyze_grid(Grid.unit(4, 2), np.zeros((3, 3)))

    def test_render_mentions_key_numbers(self):
        data = independent(500, 2, seed=9)
        text = analyze_grid(Grid.unit(4, 2), data).render()
        assert "occupied cells" in text
        assert "independent groups" in text
        assert "kappa_mapper" in text


class TestPPDSweep:
    def test_sweep_monotonicity(self):
        """Finer grids: more cells, fewer tuples per cell."""
        data = independent(5000, 2, seed=10)
        sweep = ppd_sweep(data, [2, 4, 8, 16], bounds=(np.zeros(2), np.ones(2)))
        means = [a.tuples_per_occupied_mean for a in sweep]
        assert all(a > b for a, b in zip(means, means[1:]))
        assert [a.ppd for a in sweep] == [2, 4, 8, 16]

    def test_pruning_fraction_grows_with_n_on_uniform(self):
        data = independent(20000, 2, seed=11)
        sweep = ppd_sweep(data, [2, 8], bounds=(np.zeros(2), np.ones(2)))
        assert sweep[1].pruned_tuple_fraction > sweep[0].pruned_tuple_fraction

    def test_empty_without_bounds_rejected(self):
        with pytest.raises(GridError):
            ppd_sweep(np.empty((0, 2)), [2])
