"""PPD selection (Section 3.3)."""

import pytest

from repro.errors import GridError, ValidationError
from repro.grid.grid import MAX_PARTITIONS
from repro.grid.ppd import (
    candidate_ppds,
    cap_ppd,
    ppd_from_equation4,
    select_ppd,
)


class TestEquation4:
    def test_exact_cube_root(self):
        # (8000 / 1000)^(1/3) = 2
        assert ppd_from_equation4(8000, 3, tpp=1000) == 2

    def test_rounding(self):
        # (1e6/512)^(1/8) = 2.56 -> 3
        assert ppd_from_equation4(1_000_000, 8, tpp=512) == 3

    def test_never_below_one(self):
        assert ppd_from_equation4(10, 3, tpp=1000) == 1

    def test_zero_cardinality(self):
        assert ppd_from_equation4(0, 4) == 1

    def test_capped_to_max_partitions(self):
        n = ppd_from_equation4(10 ** 9, 2, tpp=1)
        assert n ** 2 <= MAX_PARTITIONS

    def test_validation(self):
        with pytest.raises(ValidationError):
            ppd_from_equation4(-1, 2)
        with pytest.raises(ValidationError):
            ppd_from_equation4(10, 0)
        with pytest.raises(ValidationError):
            ppd_from_equation4(10, 2, tpp=0)


class TestCapPPD:
    def test_no_cap_needed(self):
        assert cap_ppd(5, 3) == 5

    def test_caps(self):
        n = cap_ppd(10_000, 3)
        assert n ** 3 <= MAX_PARTITIONS < (n + 1) ** 3

    def test_floor_is_one(self):
        assert cap_ppd(0, 2) == 1


class TestCandidates:
    def test_paper_range(self):
        # n_m = ceil(c^(1/d)); candidates are 2..n_m
        assert candidate_ppds(1000, 3) == list(range(2, 11))

    def test_tiny_data(self):
        assert candidate_ppds(1, 3) == [1]
        assert candidate_ppds(0, 3) == [1]

    def test_capped_by_max_candidates(self):
        cands = candidate_ppds(10 ** 12, 2)
        assert len(cands) <= 64

    def test_high_dimensional(self):
        cands = candidate_ppds(20_000, 10)
        assert cands[0] == 2 and cands[-1] <= 3


class TestSelect:
    def test_target_strategy_picks_closest_tpp(self):
        # c=1000; rho: j=2 -> 8 cells (TPPe=125), j=4 -> 50 (TPPe=20)
        chosen = select_ppd(
            1000, {2: 8, 4: 50}, 3, strategy="target", tpp=100
        )
        assert chosen == 2
        chosen = select_ppd(
            1000, {2: 8, 4: 50}, 3, strategy="target", tpp=25
        )
        assert chosen == 4

    def test_literal_strategy(self):
        # |c/rho - c/j^d|: j=2 fully occupied -> 0 error, j=3 sparse.
        chosen = select_ppd(
            1000, {2: 8, 3: 20}, 3, strategy="literal"
        )
        assert chosen == 2

    def test_literal_prefers_uniform_occupancy(self):
        # j=3: rho=27 (fully occupied, error 0); j=2: rho=4 of 8.
        chosen = select_ppd(1000, {2: 4, 3: 27}, 3, strategy="literal")
        assert chosen == 3

    def test_tie_breaks_to_smallest(self):
        chosen = select_ppd(1000, {3: 10, 2: 10}, 3, strategy="target", tpp=100)
        assert chosen == 2

    def test_empty_counts_rejected(self):
        with pytest.raises(GridError):
            select_ppd(1000, {}, 3)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            select_ppd(1000, {2: 8}, 3, strategy="magic")

    def test_zero_cardinality(self):
        assert select_ppd(0, {2: 0, 3: 0}, 3) == 2
