"""Shared algorithm building blocks (repro.algorithms.common) and the
basic MapReduce types."""

import numpy as np
import pytest

from repro.algorithms.common import (
    BufferingMapper,
    assemble_result,
    compare_partitions_within,
    merge_partition_skylines,
    partition_local_skylines,
)
from repro.core.pointset import PointSet
from repro.core.reference import bruteforce_skyline_indices
from repro.errors import AlgorithmError, ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import PARTITION_COMPARES
from repro.mapreduce.types import TaskContext, TaskId


def ctx(cache=None):
    return TaskContext(TaskId("map", 0), 1, DistributedCache(cache or {}))


class TestTaskTypes:
    def test_task_id_str(self):
        assert str(TaskId("reduce", 3)) == "reduce-0003"

    def test_task_id_validation(self):
        with pytest.raises(ValidationError):
            TaskId("shuffle", 0)
        with pytest.raises(ValidationError):
            TaskId("map", -1)

    def test_context_emit_collects(self):
        c = ctx()
        c.emit("k", 1)
        c.emit("k", 2)
        assert c.output == [("k", 1), ("k", 2)]


class TestBufferingMapper:
    class Recorder(BufferingMapper):
        def finish(self, points, mapper_ctx):
            mapper_ctx.emit("n", len(points))
            mapper_ctx.emit("d", points.dimensionality)

    def test_buffers_whole_split(self):
        mapper = self.Recorder()
        c = ctx({"grid": Grid.unit(2, 3)})
        mapper.setup(c)
        for i in range(5):
            mapper.map(i, np.array([0.1, 0.2, 0.3]), c)
        mapper.cleanup(c)
        assert dict(c.output) == {"n": 5, "d": 3}

    def test_empty_split_uses_grid_dimensionality(self):
        mapper = self.Recorder()
        c = ctx({"grid": Grid.unit(2, 4)})
        mapper.setup(c)
        mapper.cleanup(c)
        assert dict(c.output) == {"n": 0, "d": 4}

    def test_empty_split_uses_bounds_dimensionality(self):
        mapper = self.Recorder()
        c = ctx({"bounds": (np.zeros(5), np.ones(5))})
        mapper.setup(c)
        mapper.cleanup(c)
        assert dict(c.output)["d"] == 5


class TestPartitionLocalSkylines:
    def test_partition_and_filter(self, rng):
        grid = Grid.unit(3, 2)
        data = rng.random((200, 2))
        points = PointSet.from_array(data)
        bitstring = Bitstring.from_data(grid, data).prune_dominated()
        c = ctx()
        skylines = partition_local_skylines(points, grid, bitstring, c)
        # every key is a surviving cell, every set is that cell's skyline
        cells = grid.cell_indices(data)
        for cell, sky in skylines.items():
            assert bitstring[cell]
            members = np.flatnonzero(cells == cell)
            local = set(
                members[bruteforce_skyline_indices(data[members])].tolist()
            )
            assert sky.id_set() == local

    def test_pruned_partitions_excluded(self, rng):
        grid = Grid.unit(2, 2)
        # all mass in the best and worst cells
        good = rng.random((50, 2)) * 0.4
        bad = rng.random((50, 2)) * 0.4 + 0.6
        points = PointSet.from_array(np.vstack([good, bad]))
        bitstring = Bitstring.from_data(grid, points.values).prune_dominated()
        skylines = partition_local_skylines(points, grid, bitstring, ctx())
        assert set(skylines) == {0}  # only the origin cell survives

    def test_empty_points(self):
        grid = Grid.unit(2, 2)
        out = partition_local_skylines(
            PointSet.empty(2), grid, Bitstring(grid), ctx()
        )
        assert out == {}


class TestComparePartitionsWithin:
    def test_removes_cross_partition_false_positives(self, rng):
        grid = Grid.unit(3, 2)
        data = rng.random((300, 2))
        points = PointSet.from_array(data)
        bitstring = Bitstring.from_data(grid, data).prune_dominated()
        c = ctx()
        skylines = partition_local_skylines(points, grid, bitstring, c)
        compare_partitions_within(skylines, grid, c)
        survivors = set()
        for sky in skylines.values():
            survivors |= sky.id_set()
        assert survivors == set(bruteforce_skyline_indices(data).tolist())

    def test_counts_one_per_adr_pair(self):
        grid = Grid.unit(3, 2)
        # cells 0 (0,0), 1 (1,0), 4 (1,1): ADR pairs are
        # 1<-0, 4<-0, 4<-1  => 3 comparisons
        skylines = {
            0: PointSet.from_array(np.array([[0.1, 0.1]])),
            1: PointSet.from_array(np.array([[0.5, 0.1]]), start_id=1),
            4: PointSet.from_array(np.array([[0.5, 0.5]]), start_id=2),
        }
        c = ctx()
        compare_partitions_within(skylines, grid, c)
        assert c.counters[PARTITION_COMPARES] == 3


class TestMergeAndAssemble:
    def test_merge_partition_skylines(self, rng):
        data = rng.random((100, 2))
        chunks = []
        for lo in range(0, 100, 25):
            ids = np.arange(lo, lo + 25)
            ps = PointSet(ids, data[lo : lo + 25]).local_skyline()
            chunks.append({0: ps})
        merged = merge_partition_skylines(chunks, ctx())
        assert merged[0].id_set() == set(
            bruteforce_skyline_indices(data).tolist()
        )

    def test_assemble_sorts_and_validates(self):
        a = PointSet(np.array([5, 2]), np.zeros((2, 2)))
        b = PointSet(np.array([9]), np.ones((1, 2)))
        indices, values = assemble_result([(0, a), (1, b)], 2)
        assert indices.tolist() == [2, 5, 9]
        assert values.shape == (3, 2)

    def test_assemble_rejects_duplicate_partitions(self):
        a = PointSet(np.array([1]), np.zeros((1, 2)))
        with pytest.raises(AlgorithmError):
            assemble_result([(3, a), (3, a)], 2)

    def test_assemble_empty(self):
        indices, values = assemble_result([], 4)
        assert indices.shape == (0,)
        assert values.shape == (0, 4)
