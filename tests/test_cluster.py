"""Simulated cluster: scheduling, cost models, makespan."""

import pytest

from repro.errors import ValidationError
from repro.mapreduce.cluster import (
    MINI_CLUSTER,
    PAPER_CLUSTER,
    SimulatedCluster,
    schedule_makespan,
)
from repro.mapreduce.counters import TUPLE_COMPARES, Counters
from repro.mapreduce.metrics import JobStats, PipelineStats, TaskStats
from repro.mapreduce.types import TaskId


def task(kind, index, duration=1.0, compares=0, records=0):
    counters = Counters({TUPLE_COMPARES: compares})
    return TaskStats(
        task_id=TaskId(kind, index),
        duration_s=duration,
        records_in=records,
        records_out=0,
        bytes_out=0,
        counters=counters,
    )


class TestScheduleMakespan:
    def test_single_slot_sums(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_slots_take_max(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 3) == 3.0

    def test_greedy_least_loaded(self):
        # 4 tasks x 1s on 2 slots -> 2s.
        assert schedule_makespan([1.0] * 4, 2) == 2.0

    def test_empty(self):
        assert schedule_makespan([], 4) == 0.0

    def test_validates(self):
        with pytest.raises(ValidationError):
            schedule_makespan([1.0], 0)
        with pytest.raises(ValidationError):
            schedule_makespan([-1.0], 2)


class TestClusterConfig:
    def test_paper_defaults(self):
        assert PAPER_CLUSTER.num_nodes == 13
        assert PAPER_CLUSTER.map_slots == 13
        assert PAPER_CLUSTER.reduce_slots == 26
        assert PAPER_CLUSTER.bandwidth_bytes_per_s == pytest.approx(12.5e6)

    def test_mini_cluster(self):
        assert MINI_CLUSTER.num_nodes == 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(num_nodes=0)
        with pytest.raises(ValidationError):
            SimulatedCluster(bandwidth_bytes_per_s=0)
        with pytest.raises(ValidationError):
            SimulatedCluster(task_overhead_s=-1)
        with pytest.raises(ValidationError):
            SimulatedCluster(cost_model="psychic")
        with pytest.raises(ValidationError):
            SimulatedCluster(compare_rate=0)


class TestWorkModel:
    def test_duration_from_counters(self):
        cluster = SimulatedCluster(
            cost_model="work",
            compare_rate=100.0,
            record_rate=10.0,
            task_overhead_s=0.5,
        )
        t = task("map", 0, duration=99.0, compares=200, records=30)
        # 200/100 + 30/10 + 0.5 = 5.5; measured duration ignored.
        assert cluster.task_duration(t) == pytest.approx(5.5)

    def test_measured_model_uses_wall_time(self):
        cluster = SimulatedCluster(cost_model="measured", task_overhead_s=0.25)
        t = task("map", 0, duration=2.0, compares=10 ** 9)
        assert cluster.task_duration(t) == pytest.approx(2.25)


class TestJobMakespan:
    def make_stats(self, map_compares, reduce_compares, shuffle=0, broadcast=0):
        stats = JobStats(job_name="j")
        stats.map_tasks = [
            task("map", i, compares=c) for i, c in enumerate(map_compares)
        ]
        stats.reduce_tasks = [
            task("reduce", i, compares=c)
            for i, c in enumerate(reduce_compares)
        ]
        stats.shuffle_bytes = shuffle
        stats.broadcast_bytes = broadcast
        return stats

    def test_wave_structure(self):
        cluster = SimulatedCluster(
            num_nodes=2,
            map_slots_per_node=1,
            reduce_slots_per_node=1,
            compare_rate=1.0,
            record_rate=1e9,
            task_overhead_s=0.0,
        )
        # 4 map tasks x 1 compare on 2 slots -> 2s; 1 reduce x 3 -> 3s.
        stats = self.make_stats([1, 1, 1, 1], [3])
        assert cluster.job_makespan(stats) == pytest.approx(5.0)

    def test_shuffle_charged_by_bandwidth(self):
        cluster = SimulatedCluster(
            bandwidth_bytes_per_s=100.0, task_overhead_s=0.0
        )
        stats = self.make_stats([], [], shuffle=500)
        assert cluster.job_makespan(stats) == pytest.approx(5.0)

    def test_broadcast_replicated_to_every_node(self):
        cluster = SimulatedCluster(
            num_nodes=4, bandwidth_bytes_per_s=100.0, task_overhead_s=0.0
        )
        stats = self.make_stats([], [], broadcast=100)
        assert cluster.job_makespan(stats) == pytest.approx(4.0)

    def test_pipeline_sums_jobs(self):
        cluster = SimulatedCluster(
            bandwidth_bytes_per_s=100.0, task_overhead_s=0.0
        )
        a = self.make_stats([], [], shuffle=100)
        b = self.make_stats([], [], shuffle=300)
        assert cluster.pipeline_makespan([a, b]) == pytest.approx(4.0)

    def test_annotate_fills_simulated(self):
        cluster = SimulatedCluster()
        pipeline = PipelineStats(jobs=[self.make_stats([1], [1])])
        out = cluster.annotate(pipeline)
        assert out.simulated_s is not None and out.simulated_s > 0

    def test_more_reduce_slots_never_slower(self):
        stats = self.make_stats([], [10 ** 6] * 8)
        slow = SimulatedCluster(
            num_nodes=1, reduce_slots_per_node=1, task_overhead_s=0.0
        )
        fast = SimulatedCluster(
            num_nodes=8, reduce_slots_per_node=1, task_overhead_s=0.0
        )
        assert fast.job_makespan(stats) <= slow.job_makespan(stats)
