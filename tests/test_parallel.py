"""ThreadPoolEngine: identical semantics to the serial engine."""

import pytest

from repro.errors import TaskFailedError
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadPoolEngine
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import IdentityReducer, Mapper, Reducer


class TokenMapper(Mapper):
    def map(self, key, value, ctx):
        for token in value.split():
            ctx.emit(token, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def make_job(num_reducers=3, num_splits=5):
    lines = [(i, f"w{i % 4} shared w{i % 3}") for i in range(25)]
    return MapReduceJob(
        name="tokens",
        splits=kv_splits(lines, num_splits),
        mapper_factory=TokenMapper,
        reducer_factory=SumReducer,
        num_reducers=num_reducers,
    )


class TestEquivalence:
    def test_same_output_as_serial(self):
        serial = SerialEngine().run(make_job())
        threaded = ThreadPoolEngine(max_workers=4).run(make_job())
        assert dict(serial.all_pairs()) == dict(threaded.all_pairs())

    def test_reducer_outputs_in_task_order(self):
        threaded = ThreadPoolEngine(max_workers=4).run(make_job())
        serial = SerialEngine().run(make_job())
        assert threaded.reducer_outputs == serial.reducer_outputs

    def test_counters_match(self):
        serial = SerialEngine().run(make_job())
        threaded = ThreadPoolEngine(max_workers=2).run(make_job())
        assert (
            serial.stats.counters["mr.records_in"]
            == threaded.stats.counters["mr.records_in"]
        )

    def test_combiner_supported(self):
        job = make_job()
        job.combiner_factory = SumReducer
        result = ThreadPoolEngine(max_workers=4).run(job)
        assert dict(result.all_pairs()) == dict(
            SerialEngine().run(make_job()).all_pairs()
        )


class TestFailures:
    def test_map_failure_propagates(self):
        class Boom(Mapper):
            def map(self, key, value, ctx):
                raise RuntimeError("nope")

        job = make_job()
        job.mapper_factory = Boom
        with pytest.raises(TaskFailedError):
            ThreadPoolEngine(max_workers=2).run(job)

    def test_reduce_failure_propagates(self):
        class Boom(Reducer):
            def reduce(self, key, values, ctx):
                raise RuntimeError("nope")

        job = make_job()
        job.reducer_factory = Boom
        with pytest.raises(TaskFailedError):
            ThreadPoolEngine(max_workers=2).run(job)


class TestAlgorithmOnThreadEngine:
    def test_gpmrs_matches_oracle_on_thread_engine(self, oracle):
        from repro import skyline
        from repro.data import generate

        data = generate("anticorrelated", 300, 3, seed=5)
        result = skyline(
            data, algorithm="mr-gpmrs", engine=ThreadPoolEngine(max_workers=4)
        )
        assert set(result.indices.tolist()) == oracle(data)
