"""BNL: the paper's Algorithm 4 (InsertTuple) and the windowed pass."""

import numpy as np
import pytest

from repro.core.bnl import BNLWindow, bnl_skyline_indices, insert_tuple
from repro.core.dominance import DominanceCounter
from repro.core.reference import bruteforce_skyline_indices
from repro.errors import DataError


class TestInsertTuple:
    """Pin the pseudo-code behaviour of Algorithm 4."""

    def test_insert_into_empty_window(self):
        assert insert_tuple((1.0, 2.0), []) == [(1.0, 2.0)]

    def test_dominated_tuple_rejected(self):
        window = [(1.0, 1.0)]
        assert insert_tuple((2.0, 2.0), window) == [(1.0, 1.0)]

    def test_dominating_tuple_evicts(self):
        window = [(2.0, 2.0), (0.0, 9.0)]
        out = insert_tuple((1.0, 1.0), window)
        assert out == [(0.0, 9.0), (1.0, 1.0)]

    def test_incomparable_tuples_coexist(self):
        window = [(1.0, 3.0)]
        out = insert_tuple((3.0, 1.0), window)
        assert set(out) == {(1.0, 3.0), (3.0, 1.0)}

    def test_duplicate_joins_window(self):
        window = [(1.0, 1.0)]
        out = insert_tuple((1.0, 1.0), window)
        assert out == [(1.0, 1.0), (1.0, 1.0)]

    def test_window_mutated_in_place_on_insert(self):
        window = [(2.0, 2.0)]
        result = insert_tuple((1.0, 1.0), window)
        assert result is window and window == [(1.0, 1.0)]

    def test_sequence_reaches_skyline(self, rng):
        data = rng.random((80, 3))
        window = []
        for row in data:
            insert_tuple(tuple(row), window)
        expect = {
            tuple(data[i]) for i in bruteforce_skyline_indices(data)
        }
        assert set(window) == expect


class TestBNLWindow:
    def test_matches_insert_tuple_semantics(self, rng):
        data = rng.random((60, 2))
        window = BNLWindow(2)
        pure = []
        for i, row in enumerate(data):
            window.insert(i, row)
            insert_tuple(tuple(row), pure)
        assert {tuple(v) for v in window.values} == set(pure)

    def test_insert_returns_acceptance(self):
        window = BNLWindow(2)
        assert window.insert(0, np.array([1.0, 1.0]))
        assert not window.insert(1, np.array([2.0, 2.0]))

    def test_ids_track_evictions(self):
        window = BNLWindow(2)
        window.insert(0, np.array([2.0, 2.0]))
        window.insert(1, np.array([1.0, 1.0]))
        assert window.ids.tolist() == [1]

    def test_growth_beyond_initial_capacity(self):
        window = BNLWindow(2, capacity=2)
        # mutually incomparable anti-diagonal points
        for i in range(20):
            window.insert(i, np.array([float(i), float(20 - i)]))
        assert len(window) == 20

    def test_dimension_checked(self):
        window = BNLWindow(2)
        with pytest.raises(DataError):
            window.insert(0, np.array([1.0, 2.0, 3.0]))

    def test_counter_charged(self):
        counter = DominanceCounter()
        window = BNLWindow(2)
        window.insert(0, np.array([1.0, 2.0]), counter)
        window.insert(1, np.array([2.0, 1.0]), counter)
        assert counter.pairs == 1  # second insert compares vs 1 window row

    def test_zero_dimension_rejected(self):
        with pytest.raises(DataError):
            BNLWindow(0)


class TestBNLSkylineIndices:
    def test_matches_oracle(self, rng):
        data = rng.random((150, 4))
        got = set(bnl_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_empty_dataset(self):
        assert bnl_skyline_indices(np.empty((0, 3))).shape == (0,)

    def test_single_row(self):
        assert bnl_skyline_indices(np.array([[5.0, 5.0]])).tolist() == [0]

    def test_all_duplicates_kept(self):
        data = np.ones((5, 2))
        assert sorted(bnl_skyline_indices(data).tolist()) == [0, 1, 2, 3, 4]

    def test_requires_2d(self):
        with pytest.raises(DataError):
            bnl_skyline_indices(np.zeros(5))
