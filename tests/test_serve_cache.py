"""ResultCache: LRU mechanics, epoch invalidation, counter charging."""

import pytest

from repro.errors import ValidationError
from repro.mapreduce.counters import (
    SERVE_CACHE_EVICTIONS,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    Counters,
)
from repro.serve import ResultCache, region_key


class TestRegionKey:
    def test_none_means_full_skyline(self):
        assert region_key(None) is None

    def test_canonicalises_array_likes(self):
        import numpy as np

        a = region_key(([0.1, 0.2], [0.9, 0.8]))
        b = region_key((np.array([0.1, 0.2]), np.array([0.9, 0.8])))
        assert a == b == ((0.1, 0.2), (0.9, 0.8))
        assert hash(a) == hash(b)


class TestLRU:
    def test_hit_miss_and_recency(self):
        cache = ResultCache(capacity=2)
        assert cache.get(0, None) is None  # miss
        cache.put(0, None, "full")
        assert cache.get(0, None) == "full"  # hit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        r1 = ((0.0,), (0.5,))
        r2 = ((0.5,), (1.0,))
        cache.put(0, None, "a")
        cache.put(0, r1, "b")
        assert cache.get(0, None) == "a"  # refresh 'a': now r1 is LRU
        cache.put(0, r2, "c")  # evicts r1
        assert cache.evictions == 1
        assert cache.get(0, r1) is None
        assert cache.get(0, None) == "a"
        assert cache.get(0, r2) == "c"

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        cache.put(0, None, "x")
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            ResultCache(capacity=-1)

    def test_put_same_key_overwrites_without_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(0, None, "old")
        cache.put(0, None, "new")
        assert len(cache) == 1 and cache.evictions == 0
        assert cache.get(0, None) == "new"


class TestEpochInvalidation:
    def test_stale_epochs_cannot_hit(self):
        cache = ResultCache(capacity=8)
        cache.put(0, None, "epoch0")
        assert cache.get(1, None) is None  # epoch moved on: key mismatch

    def test_invalidate_before_sweeps_old_entries(self):
        cache = ResultCache(capacity=8)
        cache.put(0, None, "a")
        cache.put(1, None, "b")
        cache.put(2, None, "c")
        assert cache.invalidate_before(2) == 2
        assert len(cache) == 1
        assert cache.contains(2, None)
        assert cache.evictions == 2

    def test_counters_are_charged(self):
        counters = Counters()
        cache = ResultCache(capacity=1, counters=counters)
        cache.get(0, None)
        cache.put(0, None, "a")
        cache.get(0, None)
        cache.put(1, None, "b")  # evicts epoch-0 entry (capacity)
        assert counters[SERVE_CACHE_MISSES] == 1
        assert counters[SERVE_CACHE_HITS] == 1
        assert counters[SERVE_CACHE_EVICTIONS] == 1
