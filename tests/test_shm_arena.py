"""Lifecycle tests for the zero-copy shared-memory substrate.

The invariant under test: **no segment name outlives its owner's
intent** — engine shutdown, worker crash, arena GC, and explicit
unlink all leave ``/dev/shm`` clean, under both ``fork`` and ``spawn``
start methods — while mappings handed out before retirement stay
readable (POSIX keeps pages until the last mapping closes).
"""

import gc
import os
import pickle
import signal

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.core.pointset import PointSet
from repro.core.shm import (
    SEGMENT_PREFIX,
    SharedArena,
    ShmBlock,
    attach_block,
    attached_segments,
    live_segments,
    promote_cache,
    promote_splits,
    release_attachments,
    segment_exists,
)
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import (
    SHM_ATTACHES,
    SHM_BLOCKS_SHARED,
    SHM_SEGMENTS_CREATED,
    SHM_SEGMENTS_UNLINKED,
)
from repro.mapreduce.parallel import ProcessPoolEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioners import single_partitioner
from repro.mapreduce.splits import contiguous_splits
from repro.mapreduce.types import IdentityReducer, Mapper

START_METHODS = ("fork", "spawn")


def _data(n=40, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d))


def _block(n=10, d=2, seed=1):
    return PointSet(np.arange(n, dtype=np.int64), _data(n, d, seed))


class CountMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit("n", 1)


class CrashMapper(Mapper):
    """Kills its worker process outright (simulates an OOM kill)."""

    def map(self, key, value, ctx):
        os.kill(os.getpid(), signal.SIGKILL)


def _job(name="shm-job", n=40, splits=4):
    return MapReduceJob(
        name=name,
        splits=contiguous_splits(_data(n), splits),
        mapper_factory=CountMapper,
        reducer_factory=IdentityReducer,
        num_reducers=1,
        partitioner=single_partitioner,
    )


class TestShmBlock:
    def test_round_trips_through_pickle_as_descriptor(self):
        arena = SharedArena()
        try:
            shared = arena.share_block(_block())
            payload = pickle.dumps(shared)
            # The wire bytes carry a descriptor, not the arrays.
            assert len(payload) < shared.ids.nbytes + shared.values.nbytes
            clone = pickle.loads(payload)
            assert isinstance(clone, ShmBlock)
            assert clone.ref == shared.ref
            assert np.array_equal(clone.ids, shared.ids)
            assert np.array_equal(clone.values, shared.values)
        finally:
            arena.unlink()

    def test_views_are_read_only(self):
        arena = SharedArena()
        try:
            shared = arena.share_block(_block())
            with pytest.raises(ValueError):
                shared.values[0, 0] = 99.0
        finally:
            arena.unlink()

    def test_derived_operations_return_plain_pointsets(self):
        arena = SharedArena()
        try:
            shared = arena.share_block(_block())
            picked = shared.select(np.array([0, 2]))
            assert type(picked) is PointSet
            sky = shared.local_skyline()
            assert type(sky) is PointSet
        finally:
            arena.unlink()


class TestSharedArena:
    def test_packs_blocks_into_one_segment(self):
        arena = SharedArena()
        try:
            blocks = [_block(seed=i) for i in range(5)]
            shared = arena.share_blocks(blocks)
            assert len({b.ref.segment for b in shared}) == 1
            assert arena.segments_created == 1
            assert arena.blocks_shared == 5
            assert arena.bytes_shared == sum(
                b.ids.nbytes + b.values.nbytes for b in blocks
            )
            for original, out in zip(blocks, shared):
                assert np.array_equal(out.ids, original.ids)
                assert np.array_equal(out.values, original.values)
        finally:
            arena.unlink()

    def test_already_shared_blocks_pass_through(self):
        arena = SharedArena()
        try:
            shared = arena.share_block(_block())
            again = arena.share_blocks([shared])
            assert again[0] is shared
            assert arena.segments_created == 1
        finally:
            arena.unlink()

    def test_unlink_is_idempotent_and_clears_names(self):
        arena = SharedArena()
        arena.share_block(_block())
        names = arena.names
        assert all(segment_exists(n) for n in names)
        arena.unlink()
        arena.unlink()
        assert arena.closed
        assert arena.names == ()
        assert not any(segment_exists(n) for n in names)

    def test_views_survive_unlink(self):
        arena = SharedArena()
        shared = arena.share_block(_block())
        expected = shared.values.copy()
        arena.unlink()
        # The name is gone but the mapping (and pages) remain valid.
        assert np.array_equal(shared.values, expected)

    def test_gc_finalizer_releases_names(self):
        arena = SharedArena()
        arena.share_block(_block())
        names = arena.names
        del arena
        gc.collect()
        assert not any(segment_exists(n) for n in names)

    def test_deterministic_name_prefix(self):
        arena = SharedArena()
        try:
            shared = arena.share_block(_block())
            assert shared.ref.segment.startswith(
                f"{SEGMENT_PREFIX}{os.getpid()}-"
            )
        finally:
            arena.unlink()

    def test_release_attachments_drops_stale_handles(self):
        arena = SharedArena()
        try:
            shared = arena.share_block(_block())
            # Re-attach through the unpickle path so the registry holds
            # the segment, then release everything not kept.
            attach_block(shared.ref)
            assert shared.ref.segment in attached_segments()
            release_attachments(keep=())
            assert shared.ref.segment not in attached_segments()
        finally:
            arena.unlink()


class TestPromotion:
    def test_promote_splits_rehomes_blocks_in_place_order(self):
        splits = contiguous_splits(_data(30), 3)
        arena = SharedArena()
        try:
            promoted = promote_splits(splits, arena)
            assert [s.split_id for s in promoted] == [
                s.split_id for s in splits
            ]
            assert all(isinstance(s.points, ShmBlock) for s in promoted)
            for before, after in zip(splits, promoted):
                assert np.array_equal(before.points.ids, after.points.ids)
                assert np.array_equal(
                    before.points.values, after.points.values
                )
        finally:
            arena.unlink()

    def test_promote_cache_preserves_keys_and_sizes(self):
        from repro.mapreduce.sizes import payload_size

        cache = DistributedCache({"sky": _block(), "config": {"k": 1}})
        size_before = cache.payload_bytes()
        arena = SharedArena()
        try:
            promoted = promote_cache(cache, arena)
            assert set(promoted) == set(cache)
            assert isinstance(promoted.get("sky"), ShmBlock)
            assert promoted.get("config") == {"k": 1}
            assert promoted.payload_bytes() == size_before
            assert payload_size(promoted.get("sky")) == payload_size(
                cache.get("sky")
            )
        finally:
            arena.unlink()

    def test_promote_cache_without_blocks_returns_original(self):
        cache = DistributedCache({"config": {"k": 1}})
        arena = SharedArena()
        try:
            assert promote_cache(cache, arena) is cache
            assert arena.segments_created == 0
        finally:
            arena.unlink()


@pytest.mark.parametrize("start_method", START_METHODS)
class TestEngineLifecycle:
    """The tentpole invariant: engines never leak segment names."""

    @pytest.fixture(autouse=True)
    def _flush_foreign_arenas(self):
        # Engines from other tests release their arenas on GC; collect
        # first so this class's /dev/shm scans see only its own work.
        gc.collect()
        yield

    def test_shutdown_unlinks_all_segments(self, start_method):
        engine = ProcessPoolEngine(max_workers=2, start_method=start_method)
        try:
            result = engine.run(_job())
            assert sorted(v for _k, v in result.all_pairs()) == [1] * 40
            # The job's arena stays linked after the run (returned
            # views must remain valid) ...
            assert engine.shm_counters.get(SHM_SEGMENTS_CREATED) >= 1
            assert engine.shm_counters.get(SHM_BLOCKS_SHARED) >= 4
        finally:
            engine.shutdown()
        # ... and shutdown retires it.
        assert engine.shm_counters.get(SHM_SEGMENTS_UNLINKED) >= 1
        assert live_segments() == ()

    def test_next_run_retires_previous_arena(self, start_method):
        with ProcessPoolEngine(
            max_workers=2, start_method=start_method
        ) as engine:
            engine.run(_job("first"))
            first = set(live_segments())
            assert first
            engine.run(_job("second"))
            # First job's segments are gone; second job's are live.
            assert not (first & set(live_segments()))
            # The persistent workers predate the second job's segment,
            # so they must have attached it by name. (The first job's
            # segment can arrive for free — fork inherits the mapping —
            # which is why this is asserted on the second run.)
            assert engine.shm_counters.get(SHM_ATTACHES) >= 1
        assert live_segments() == ()

    def test_worker_crash_retires_arena(self, start_method):
        engine = ProcessPoolEngine(max_workers=2, start_method=start_method)
        try:
            crash = MapReduceJob(
                name="crash",
                splits=contiguous_splits(_data(12), 2),
                mapper_factory=CrashMapper,
                reducer_factory=IdentityReducer,
                num_reducers=1,
                partitioner=single_partitioner,
            )
            with pytest.raises(BrokenProcessPool):
                engine.run(crash)
            assert live_segments() == ()
            # The engine recovers: a fresh pool serves the next job.
            result = engine.run(_job("after-crash"))
            assert sorted(v for _k, v in result.all_pairs()) == [1] * 40
        finally:
            engine.shutdown()
        assert live_segments() == ()

    def test_shm_disabled_creates_no_segments(self, start_method):
        with ProcessPoolEngine(
            max_workers=2, start_method=start_method, shm=False
        ) as engine:
            result = engine.run(_job())
            assert sorted(v for _k, v in result.all_pairs()) == [1] * 40
            assert engine.shm_counters.get(SHM_SEGMENTS_CREATED) == 0
            assert live_segments() == ()
