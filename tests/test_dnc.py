"""Divide & Conquer skyline [Börzsönyi et al.]."""

import numpy as np
import pytest

from repro.core.dnc import dnc_skyline, dnc_skyline_indices
from repro.core.dominance import DominanceCounter
from repro.core.reference import bruteforce_skyline_indices
from repro.data.generators import generate
from repro.errors import DataError, ValidationError


class TestDNC:
    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    def test_matches_oracle(self, oracle, distribution):
        data = generate(distribution, 300, 3, seed=61)
        got = set(dnc_skyline_indices(data).tolist())
        assert got == oracle(data)

    def test_small_block_size_forces_deep_recursion(self, oracle, rng):
        data = rng.random((200, 3))
        got = set(dnc_skyline_indices(data, block_size=4).tolist())
        assert got == oracle(data)

    def test_duplicates_kept(self):
        data = np.array([[1.0, 1.0]] * 4 + [[2.0, 2.0]])
        assert sorted(dnc_skyline_indices(data, block_size=2).tolist()) == [
            0,
            1,
            2,
            3,
        ]

    def test_constant_dimension(self, oracle, rng):
        data = rng.random((150, 3))
        data[:, 0] = 0.5  # ties everywhere on the split dimension
        got = set(dnc_skyline_indices(data, block_size=8).tolist())
        assert got == oracle(data)

    def test_all_identical_rows(self):
        data = np.ones((40, 2))
        assert dnc_skyline_indices(data, block_size=4).shape == (40,)

    def test_lattice_values_with_boundary_ties(self, oracle):
        rng = np.random.default_rng(62)
        data = rng.choice([0.0, 0.25, 0.5, 0.75, 1.0], size=(250, 3))
        got = set(dnc_skyline_indices(data, block_size=8).tolist())
        assert got == oracle(data)

    def test_empty_and_single(self):
        assert dnc_skyline_indices(np.empty((0, 2))).shape == (0,)
        assert dnc_skyline_indices(np.array([[1.0, 2.0]])).tolist() == [0]

    def test_indices_sorted(self, rng):
        idx = dnc_skyline_indices(rng.random((200, 3)))
        assert np.all(np.diff(idx) > 0)

    def test_counter_charged(self, rng):
        counter = DominanceCounter()
        dnc_skyline_indices(rng.random((200, 3)), counter=counter)
        assert counter.pairs > 0

    def test_rows_helper(self, oracle, rng):
        data = rng.random((100, 2))
        rows = dnc_skyline(data)
        expect = data[sorted(oracle(data))]
        assert np.array_equal(rows, expect)

    def test_validation(self):
        with pytest.raises(DataError):
            dnc_skyline_indices(np.zeros(3))
        with pytest.raises(ValidationError):
            dnc_skyline_indices(np.zeros((3, 2)), block_size=1)

    def test_registered_as_centralized_method(self, oracle, rng):
        from repro import skyline

        data = rng.random((150, 3))
        result = skyline(data, algorithm="dnc")
        assert set(result.indices.tolist()) == oracle(data)
