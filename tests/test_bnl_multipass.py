"""Bounded-window multi-pass BNL (the faithful Börzsönyi algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bnl import bnl_multipass_skyline_indices, bnl_skyline_indices
from repro.core.dominance import DominanceCounter
from repro.core.reference import bruteforce_skyline_indices
from repro.data.generators import anticorrelated, correlated, independent
from repro.errors import DataError


class TestMultipassBNL:
    @pytest.mark.parametrize("window", [1, 2, 7, 64, 10_000])
    def test_matches_oracle_any_window(self, rng, window):
        data = rng.random((200, 3))
        got = set(
            bnl_multipass_skyline_indices(data, window_size=window).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_matches_unbounded_variant(self, rng):
        data = rng.random((300, 3))
        bounded = set(
            bnl_multipass_skyline_indices(data, window_size=5).tolist()
        )
        unbounded = set(bnl_skyline_indices(data).tolist())
        assert bounded == unbounded

    def test_anticorrelated_with_tiny_window(self):
        """Worst case: huge skyline, window of 3 — many passes."""
        data = anticorrelated(150, 3, seed=5)
        got = set(
            bnl_multipass_skyline_indices(data, window_size=3).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_correlated_confirms_quickly(self):
        data = correlated(300, 3, seed=5)
        got = set(
            bnl_multipass_skyline_indices(data, window_size=4).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_sorted_input_order(self, rng):
        """Best-for-skyline-first input: everything confirmed in pass 1."""
        data = rng.random((200, 2))
        data = data[np.argsort(data.sum(axis=1))]
        got = set(
            bnl_multipass_skyline_indices(data, window_size=8).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_reverse_sorted_input_order(self, rng):
        """Worst input order: the window churns via evictions."""
        data = rng.random((200, 2))
        data = data[np.argsort(-data.sum(axis=1))]
        got = set(
            bnl_multipass_skyline_indices(data, window_size=8).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_duplicates_kept(self):
        data = np.array([[0.5, 0.5]] * 6 + [[0.9, 0.9]])
        got = bnl_multipass_skyline_indices(data, window_size=2)
        assert got.tolist() == [0, 1, 2, 3, 4, 5]

    def test_empty_and_single(self):
        assert bnl_multipass_skyline_indices(
            np.empty((0, 2)), window_size=4
        ).shape == (0,)
        assert bnl_multipass_skyline_indices(
            np.ones((1, 2)), window_size=1
        ).tolist() == [0]

    def test_counter_charged(self, rng):
        counter = DominanceCounter()
        bnl_multipass_skyline_indices(
            rng.random((100, 2)), window_size=4, counter=counter
        )
        assert counter.pairs > 0

    def test_validation(self, rng):
        with pytest.raises(DataError):
            bnl_multipass_skyline_indices(np.zeros(4), window_size=4)
        with pytest.raises(DataError):
            bnl_multipass_skyline_indices(np.zeros((4, 2)), window_size=0)

    @settings(max_examples=60, deadline=None)
    @given(
        data=hnp.arrays(
            np.float64,
            st.tuples(st.integers(0, 40), st.integers(1, 4)),
            elements=st.sampled_from([0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0]),
        ),
        window=st.integers(1, 10),
    )
    def test_property_matches_oracle(self, data, window):
        got = set(
            bnl_multipass_skyline_indices(data, window_size=window).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_registry_entry(self, oracle, rng):
        from repro import skyline

        data = rng.random((150, 3))
        result = skyline(data, algorithm="bnl-multipass", window_size=6)
        assert set(result.indices.tolist()) == oracle(data)
