"""PointSet container semantics and dominance operations."""

import numpy as np
import pytest

from repro.core.dominance import DominanceCounter
from repro.core.pointset import PointSet
from repro.core.reference import bruteforce_skyline_indices
from repro.errors import DataError


def make(values, start_id=0):
    return PointSet.from_array(np.asarray(values, dtype=np.float64), start_id)


class TestConstruction:
    def test_from_array_assigns_sequential_ids(self):
        ps = make([[1, 2], [3, 4]], start_id=5)
        assert ps.ids.tolist() == [5, 6]
        assert len(ps) == 2 and ps.dimensionality == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError):
            PointSet(np.array([1, 2]), np.zeros((3, 2)))

    def test_values_must_be_2d(self):
        with pytest.raises(DataError):
            PointSet(np.array([0]), np.zeros(3))

    def test_empty(self):
        ps = PointSet.empty(4)
        assert len(ps) == 0 and ps.dimensionality == 4

    def test_concat(self):
        ps = PointSet.concat([make([[1, 1]]), make([[2, 2]], start_id=7)])
        assert ps.ids.tolist() == [0, 7]

    def test_concat_skips_empty_parts(self):
        ps = PointSet.concat([PointSet.empty(2), make([[1, 1]])])
        assert len(ps) == 1

    def test_concat_all_empty_rejected(self):
        with pytest.raises(DataError):
            PointSet.concat([PointSet.empty(2)])

    def test_equality(self):
        assert make([[1, 2]]) == make([[1, 2]])
        assert make([[1, 2]]) != make([[1, 3]])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make([[1, 2]]))


class TestSelection:
    def test_select_mask(self):
        ps = make([[1, 1], [2, 2], [3, 3]])
        sub = ps.select(np.array([True, False, True]))
        assert sub.ids.tolist() == [0, 2]

    def test_select_indices(self):
        ps = make([[1, 1], [2, 2], [3, 3]])
        sub = ps.select(np.array([2, 0]))
        assert sub.ids.tolist() == [2, 0]

    def test_sort_by(self):
        ps = make([[3, 3], [1, 1], [2, 2]])
        out = ps.sort_by(ps.values.sum(axis=1))
        assert out.ids.tolist() == [1, 2, 0]

    def test_iter(self):
        ps = make([[1, 2]])
        [(pid, row)] = list(ps)
        assert pid == 0 and row.tolist() == [1.0, 2.0]

    def test_copy_is_deep(self):
        ps = make([[1, 2]])
        cp = ps.copy()
        cp.values[0, 0] = 9
        assert ps.values[0, 0] == 1


class TestDominanceOps:
    def test_remove_dominated_by(self):
        target = make([[2, 2], [0, 5]])
        other = make([[1, 1]], start_id=10)
        out = target.remove_dominated_by(other)
        assert out.ids.tolist() == [1]  # [0,5] incomparable with [1,1]

    def test_remove_dominated_by_counts_pairs(self):
        counter = DominanceCounter()
        make([[2, 2], [3, 3]]).remove_dominated_by(
            make([[1, 1]]), counter
        )
        assert counter.pairs == 2  # 1 source x 2 targets

    def test_remove_dominated_by_empty_other_is_noop(self):
        target = make([[2, 2]])
        assert target.remove_dominated_by(PointSet.empty(2)) is target

    def test_local_skyline_matches_oracle(self, rng):
        data = rng.random((120, 3))
        ps = PointSet.from_array(data)
        sky = ps.local_skyline()
        assert sky.id_set() == set(bruteforce_skyline_indices(data).tolist())

    def test_local_skyline_keeps_duplicates(self):
        ps = make([[1, 1], [1, 1], [2, 2]])
        assert ps.local_skyline().id_set() == {0, 1}

    def test_local_skyline_counts_work(self, rng):
        counter = DominanceCounter()
        PointSet.from_array(rng.random((50, 2))).local_skyline(counter)
        assert counter.pairs > 0

    def test_merge_skyline(self, rng):
        data = rng.random((100, 3))
        left = PointSet.from_array(data[:50]).local_skyline()
        right = PointSet(
            np.arange(50, 100), data[50:]
        ).local_skyline()
        merged = left.merge_skyline(right)
        assert merged.id_set() == set(
            bruteforce_skyline_indices(data).tolist()
        )

    def test_merge_skyline_empty_sides(self):
        ps = make([[1, 1]])
        assert ps.merge_skyline(PointSet.empty(2)) is ps
        assert PointSet.empty(2).merge_skyline(ps) is ps

    def test_merge_skyline_identical_duplicate_sets(self):
        left = make([[1, 1]])
        right = make([[1, 1]], start_id=5)
        merged = left.merge_skyline(right)
        assert merged.id_set() == {0, 5}  # equal points never dominate
