"""Job chaining."""

import pytest

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.pipeline import JobChain
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import IdentityMapper, Mapper, Reducer


class Doubler(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value * 2)


class PassReducer(Reducer):
    def reduce(self, key, values, ctx):
        for v in values:
            ctx.emit(key, v)


class CachePlus(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value + ctx.cache["delta"])


def stage_one(_previous):
    return MapReduceJob(
        name="double",
        splits=kv_splits([(0, 1), (1, 2), (2, 3)], 2),
        mapper_factory=Doubler,
        reducer_factory=PassReducer,
        num_reducers=1,
    )


def stage_two(previous):
    """Second stage consumes the first stage's output and its sum."""
    pairs = previous.all_pairs()
    total = sum(v for _, v in pairs)
    return MapReduceJob(
        name="shift",
        splits=kv_splits(pairs, 1),
        mapper_factory=CachePlus,
        reducer_factory=PassReducer,
        num_reducers=1,
        cache=DistributedCache({"delta": total}),
    )


class TestJobChain:
    def test_two_stage_chain(self):
        chain = JobChain()
        out = chain.run([stage_one, stage_two])
        values = sorted(v for _, v in out.final.all_pairs())
        # stage 1: {2, 4, 6}; total 12; stage 2 adds 12.
        assert values == [14, 16, 18]

    def test_stats_per_job(self):
        out = JobChain().run([stage_one, stage_two])
        assert [j.job_name for j in out.stats.jobs] == ["double", "shift"]
        assert out.stats.job("double").num_map_tasks == 2
        with pytest.raises(KeyError):
            out.stats.job("missing")

    def test_wall_time_recorded(self):
        out = JobChain().run([stage_one])
        assert out.stats.wall_s > 0

    def test_cluster_annotation(self):
        cluster = SimulatedCluster(num_nodes=2)
        out = JobChain(cluster=cluster).run([stage_one, stage_two])
        assert out.stats.simulated_s == pytest.approx(
            cluster.pipeline_makespan(out.stats.jobs)
        )

    def test_no_cluster_leaves_simulated_none(self):
        out = JobChain().run([stage_one])
        assert out.stats.simulated_s is None

    def test_merged_counters(self):
        out = JobChain().run([stage_one, stage_two])
        merged = out.stats.counters()
        assert merged["mr.records_in"] > 0

    def test_totals(self):
        out = JobChain().run([stage_one, stage_two])
        assert out.stats.total_shuffle_bytes() > 0
        assert out.stats.total_cpu_s() >= 0
        summary = out.stats.summary()
        assert summary["jobs"] == 2
