"""Preference handling and dataset validation (repro.core.order)."""

import numpy as np
import pytest

from repro.core.order import (
    Preference,
    as_dataset,
    coerce_preferences,
    iter_rows,
    minmax_bounds,
    normalize,
)
from repro.errors import DataError, ValidationError


class TestPreference:
    def test_coerce_strings(self):
        assert Preference.coerce("min") is Preference.MIN
        assert Preference.coerce("MAX") is Preference.MAX

    def test_coerce_passthrough(self):
        assert Preference.coerce(Preference.MIN) is Preference.MIN

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ValidationError):
            Preference.coerce("upward")
        with pytest.raises(ValidationError):
            Preference.coerce(42)


class TestCoercePreferences:
    def test_none_is_all_min(self):
        assert coerce_preferences(None, 3) == (Preference.MIN,) * 3

    def test_single_value_broadcasts(self):
        assert coerce_preferences("max", 2) == (Preference.MAX, Preference.MAX)

    def test_sequence_must_match_dimensionality(self):
        with pytest.raises(ValidationError):
            coerce_preferences(["min", "max"], 3)

    def test_mixed_sequence(self):
        out = coerce_preferences(["min", "max", "min"], 3)
        assert out == (Preference.MIN, Preference.MAX, Preference.MIN)

    def test_zero_dimensionality_rejected(self):
        with pytest.raises(ValidationError):
            coerce_preferences(None, 0)


class TestAsDataset:
    def test_lists_become_float_arrays(self):
        arr = as_dataset([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_single_tuple_promoted_to_row(self):
        assert as_dataset([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(DataError):
            as_dataset(np.zeros((2, 2, 2)))

    def test_rejects_zero_dims(self):
        with pytest.raises(DataError):
            as_dataset(np.zeros((4, 0)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(DataError):
            as_dataset([[1.0, float("nan")]])
        with pytest.raises(DataError):
            as_dataset([[float("inf"), 1.0]])

    def test_empty_rows_allowed(self):
        assert as_dataset(np.zeros((0, 3))).shape == (0, 3)


class TestNormalize:
    def test_all_min_returns_copy(self):
        data = np.array([[1.0, 2.0]])
        out = normalize(data)
        assert np.array_equal(out, data)
        out[0, 0] = 99.0
        assert data[0, 0] == 1.0  # caller's array untouched

    def test_max_dimensions_negated(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = normalize(data, ["min", "max"])
        assert np.array_equal(out[:, 0], data[:, 0])
        assert np.array_equal(out[:, 1], -data[:, 1])

    def test_negation_preserves_dominance(self):
        from repro.core.dominance import dominates

        # b beats a on a MAX dimension.
        a, b = [1.0, 5.0], [1.0, 7.0]
        norm = normalize([a, b], ["min", "max"])
        assert dominates(norm[1], norm[0])
        assert not dominates(norm[0], norm[1])


class TestBoundsAndRows:
    def test_minmax_bounds(self):
        lows, highs = minmax_bounds([[1.0, 9.0], [4.0, 2.0]])
        assert lows.tolist() == [1.0, 2.0]
        assert highs.tolist() == [4.0, 9.0]

    def test_minmax_bounds_empty_rejected(self):
        with pytest.raises(DataError):
            minmax_bounds(np.zeros((0, 2)))

    def test_iter_rows_yields_tuples(self):
        rows = list(iter_rows([[1.0, 2.0], [3.0, 4.0]]))
        assert rows == [(1.0, 2.0), (3.0, 4.0)]
        assert all(isinstance(r, tuple) for r in rows)
