"""Residual coverage: small public surfaces not pinned elsewhere."""

import numpy as np
import pytest

from repro.bench.harness import _DATA_CACHE, _DATA_CACHE_LIMIT, Workload, workload_data
from repro.cli import main
from repro.grid.grid import Grid
from repro.grid.regions import partition_dominates, weakly_covered_mask


class TestWeaklyCoveredMask:
    def test_matches_pairwise_definition(self, rng):
        grid = Grid.unit(4, 2)
        occupied = rng.random(16) < 0.4
        mask = weakly_covered_mask(grid, occupied)
        coords = grid.coords_array()
        for c in range(16):
            expect = any(
                occupied[q] and (coords[q] <= coords[c]).all()
                for q in range(16)
            )
            assert mask[c] == expect

    def test_occupied_cells_cover_themselves(self, rng):
        grid = Grid.unit(3, 3)
        occupied = rng.random(27) < 0.5
        mask = weakly_covered_mask(grid, occupied)
        assert (mask[occupied]).all()

    def test_relationship_to_strict_domination(self, rng):
        """Weak cover of cell c-(1,..,1) == strict domination of c."""
        from repro.grid.regions import strictly_dominated_mask

        grid = Grid.unit(4, 2)
        occupied = rng.random(16) < 0.5
        strict = strictly_dominated_mask(grid, occupied)
        weak = weakly_covered_mask(grid, occupied)
        coords = grid.coords_array()
        for c in range(16):
            if (coords[c] >= 1).all():
                shifted = grid.index_of(tuple(coords[c] - 1))
                assert strict[c] == weak[shifted]
            else:
                assert not strict[c]


class TestHarnessCache:
    def test_cache_evicts_beyond_limit(self):
        _DATA_CACHE.clear()
        for i in range(_DATA_CACHE_LIMIT + 3):
            workload_data(Workload("independent", 64, 2, seed=i))
        assert len(_DATA_CACHE) <= _DATA_CACHE_LIMIT
        _DATA_CACHE.clear()

    def test_cache_key_includes_seed(self):
        a = workload_data(Workload("independent", 64, 2, seed=1))
        b = workload_data(Workload("independent", 64, 2, seed=2))
        assert not np.array_equal(a, b)


class TestCLIErrorPaths:
    def test_bad_prefs_reported_cleanly(self, capsys):
        code = main(
            [
                "compute",
                "--distribution",
                "independent",
                "-c",
                "50",
                "-d",
                "3",
                "--algorithm",
                "sfs",
                "--prefs",
                "min,max",  # wrong count for d=3
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_compare_flags_disagreement(self, capsys):
        """If an algorithm ever disagreed, the table would say NO; with
        correct algorithms every row says yes (already covered) — here
        we just pin that at least two algorithms ran."""
        code = main(
            [
                "compare",
                "-c",
                "200",
                "-d",
                "2",
                "--algorithms",
                "sfs,bruteforce",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bruteforce" in out


class TestGridReprAndDescribe:
    def test_describe_mentions_shape(self):
        text = Grid.unit(3, 2).describe()
        assert "n=3" in text and "cells=9" in text

    def test_partition_dominates_requires_all_axes(self):
        g = Grid.unit(3, 3)
        a = g.index_of((0, 0, 0))
        b = g.index_of((1, 1, 0))  # equal on axis 2
        assert not partition_dominates(g, a, b)
        c = g.index_of((1, 1, 1))
        assert partition_dominates(g, a, c)


class TestPublicInit:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.bench as bench
        import repro.core as core
        import repro.grid as grid
        import repro.mapreduce as mapreduce

        for module in (bench, core, grid, mapreduce):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
