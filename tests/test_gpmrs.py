"""MR-GPMRS (Algorithms 7-9, Sections 5.3-5.4)."""

import numpy as np
import pytest

from repro.algorithms.gpmrs import MRGPMRS
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import PARTITION_COMPARES


class TestCorrectness:
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_matches_oracle(self, oracle, distribution, d):
        data = generate(distribution, 250, d, seed=23)
        result = MRGPMRS(ppd=3, num_reducers=4).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    @pytest.mark.parametrize("reducers", [1, 2, 3, 5, 9, 17])
    def test_reducer_count_invariant(self, oracle, rng, reducers):
        data = rng.random((300, 3))
        result = MRGPMRS(ppd=3, num_reducers=reducers).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    @pytest.mark.parametrize("strategy", ["computation", "communication"])
    def test_merge_strategy_invariant(self, oracle, rng, strategy):
        data = rng.random((300, 3))
        result = MRGPMRS(
            ppd=3, num_reducers=3, merge_strategy=strategy
        ).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_mapper_count_invariant(self, oracle, rng):
        data = rng.random((200, 3))
        expect = oracle(data)
        for m in (1, 4, 19):
            result = MRGPMRS(ppd=3, num_reducers=4).compute(
                data, num_mappers=m
            )
            assert set(result.indices.tolist()) == expect, m

    def test_anticorrelated_large_skyline(self, oracle):
        data = generate("anticorrelated", 400, 4, seed=3)
        result = MRGPMRS(ppd=3, num_reducers=6).compute(data)
        assert set(result.indices.tolist()) == oracle(data)
        assert len(result) > 100  # genuinely a large skyline

    def test_without_pruning(self, oracle, rng):
        data = rng.random((250, 3))
        result = MRGPMRS(
            ppd=3, num_reducers=4, prune_bitstring=False
        ).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_empty_dataset(self):
        result = MRGPMRS().compute(np.empty((0, 4)))
        assert len(result) == 0

    def test_duplicates_across_groups(self):
        data = np.vstack(
            [np.array([[0.05, 0.95]] * 2), np.array([[0.95, 0.05]] * 2)]
        )
        result = MRGPMRS(ppd=3, num_reducers=2).compute(data)
        assert sorted(result.indices.tolist()) == [0, 1, 2, 3]


class TestNoDuplicateOutputs:
    def test_each_partition_output_once(self, rng):
        """Section 5.4.2: replicated partitions must be emitted by
        exactly one reducer — assemble_result raises otherwise, so a
        clean run plus exact-set equality proves dedup works."""
        data = generate("anticorrelated", 500, 3, seed=9)
        result = MRGPMRS(ppd=4, num_reducers=5).compute(data)
        # ids unique?
        assert len(set(result.indices.tolist())) == len(result)

    def test_skyline_identical_across_reducer_counts(self, rng):
        data = generate("anticorrelated", 400, 3, seed=11)
        baseline = MRGPMRS(ppd=4, num_reducers=1).compute(data)
        for r in (2, 4, 8):
            other = MRGPMRS(ppd=4, num_reducers=r).compute(data)
            assert np.array_equal(other.indices, baseline.indices)


class TestStructure:
    def test_two_job_pipeline(self, rng):
        result = MRGPMRS(ppd=3, num_reducers=2).compute(rng.random((100, 2)))
        assert [j.job_name for j in result.stats.jobs] == [
            "bitstring",
            "gpmrs-skyline",
        ]

    def test_multiple_reducers_active(self):
        data = generate("anticorrelated", 600, 2, seed=5)
        result = MRGPMRS(ppd=6, num_reducers=4).compute(data)
        job = result.stats.jobs[1]
        active = [t for t in job.reduce_tasks if t.records_in > 0]
        assert len(active) >= 2

    def test_default_reducers_one_per_node(self, rng):
        """Section 7.1: 'MR-GPMRS uses one reducer per node'."""
        cluster = SimulatedCluster(num_nodes=7)
        result = MRGPMRS(ppd=3).compute(rng.random((100, 2)), cluster=cluster)
        assert result.stats.jobs[1].num_reduce_tasks == 7

    def test_artifacts_include_groups(self, rng):
        result = MRGPMRS(ppd=3, num_reducers=2).compute(rng.random((150, 2)))
        groups = result.artifacts["independent_groups"]
        reducer_groups = result.artifacts["reducer_groups"]
        assert groups and reducer_groups
        assert len(reducer_groups) <= 2

    def test_partition_compares_counted_per_reducer(self):
        data = generate("anticorrelated", 500, 2, seed=5)
        result = MRGPMRS(ppd=6, num_reducers=4).compute(data)
        job = result.stats.jobs[1]
        assert job.max_task_counter("reduce", PARTITION_COMPARES) >= 0
        assert job.max_task_counter("map", PARTITION_COMPARES) > 0

    def test_reducer_work_split_vs_gpsrs(self):
        """The busiest GPMRS reducer compares no more partitions than
        MR-GPSRS's single reducer on the same workload."""
        from repro.algorithms.gpsrs import MRGPSRS

        data = generate("anticorrelated", 800, 3, seed=7)
        single = MRGPSRS(ppd=4).compute(data)
        multi = MRGPMRS(ppd=4, num_reducers=6).compute(data)
        single_max = single.stats.jobs[1].max_task_counter(
            "reduce", PARTITION_COMPARES
        )
        multi_max = multi.stats.jobs[1].max_task_counter(
            "reduce", PARTITION_COMPARES
        )
        assert multi_max <= single_max


class TestValidation:
    def test_bad_num_reducers(self):
        with pytest.raises(ValidationError):
            MRGPMRS(num_reducers=0)

    def test_bad_merge_strategy(self):
        with pytest.raises(ValidationError):
            MRGPMRS(merge_strategy="psychic")
