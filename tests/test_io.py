"""File-backed input splits (CSV and .npy record readers)."""

import numpy as np
import pytest

from repro.data.datasets import LabelledDataset, save_csv
from repro.errors import DataError, ValidationError
from repro.mapreduce.io import (
    CSVRecordReader,
    count_csv_rows,
    csv_splits,
    npy_splits,
)


@pytest.fixture
def csv_file(tmp_path, rng):
    data = rng.random((57, 3))
    path = str(tmp_path / "data.csv")
    save_csv(
        path, LabelledDataset(values=data, columns=("a", "b", "c"))
    )
    return path, data


@pytest.fixture
def npy_file(tmp_path, rng):
    data = rng.random((41, 2))
    path = str(tmp_path / "data.npy")
    np.save(path, data)
    return path, data


class TestCSV:
    def test_count_rows(self, csv_file):
        path, data = csv_file
        assert count_csv_rows(path) == data.shape[0]

    def test_count_missing_file(self):
        with pytest.raises(DataError):
            count_csv_rows("/nope/never.csv")

    def test_splits_cover_all_rows(self, csv_file):
        path, data = csv_file
        splits = csv_splits(path, 5)
        seen = {}
        for split in splits:
            for rid, values in split:
                seen[rid] = values
        assert sorted(seen) == list(range(data.shape[0]))
        for rid, values in seen.items():
            assert np.allclose(values, data[rid])

    def test_reader_rewindable(self, csv_file):
        path, _data = csv_file
        reader = CSVRecordReader(path, 0, 5)
        first = list(reader)
        second = list(reader)
        assert len(first) == len(second) == 5

    def test_label_column_skipped(self, tmp_path, rng):
        data = rng.random((10, 2))
        path = str(tmp_path / "labelled.csv")
        save_csv(
            path,
            LabelledDataset(
                values=data,
                columns=("x", "y"),
                labels=tuple(f"r{i}" for i in range(10)),
            ),
        )
        splits = csv_splits(path, 2, label_column=True)
        rows = [v for s in splits for _rid, v in s]
        assert np.allclose(np.vstack(rows), data)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1.0,oops\n")
        with pytest.raises(DataError):
            list(CSVRecordReader(str(path), 0, 1))

    def test_validates_num_splits(self, csv_file):
        with pytest.raises(ValidationError):
            csv_splits(csv_file[0], 0)


class TestNpy:
    def test_splits_cover_all_rows(self, npy_file):
        path, data = npy_file
        splits = npy_splits(path, 4)
        seen = {}
        for split in splits:
            for rid, values in split:
                seen[rid] = values
        assert sorted(seen) == list(range(data.shape[0]))
        assert np.allclose(np.vstack([seen[i] for i in sorted(seen)]), data)

    def test_missing_file(self):
        with pytest.raises(DataError):
            npy_splits("/nope/never.npy", 2)

    def test_requires_2d(self, tmp_path):
        path = str(tmp_path / "one_d.npy")
        np.save(path, np.zeros(5))
        with pytest.raises(DataError):
            npy_splits(path, 2)


class TestEndToEndFromFiles:
    def test_skyline_job_over_csv_splits(self, csv_file, oracle):
        """Run the actual MR-GPSRS jobs over file-backed splits."""
        from repro.algorithms.bitstring_job import (
            extract_bitstring,
            make_bitstring_job,
        )
        from repro.algorithms.gpsrs import GPSRSMapper, GPSRSReducer
        from repro.algorithms.common import CACHE_BITSTRING, CACHE_GRID, assemble_result
        from repro.grid.grid import Grid
        from repro.mapreduce.cache import DistributedCache
        from repro.mapreduce.engine import SerialEngine
        from repro.mapreduce.job import MapReduceJob
        from repro.mapreduce.partitioners import single_partitioner

        path, data = csv_file
        splits = csv_splits(path, 3)
        grid = Grid.fit(data, 3)
        engine = SerialEngine()
        bits = extract_bitstring(
            engine.run(make_bitstring_job(splits, grid)), grid
        )
        job = MapReduceJob(
            name="gpsrs-from-csv",
            splits=splits,
            mapper_factory=GPSRSMapper,
            reducer_factory=GPSRSReducer,
            num_reducers=1,
            partitioner=single_partitioner,
            cache=DistributedCache(
                {CACHE_GRID: grid, CACHE_BITSTRING: bits.to_bytes()}
            ),
        )
        result = engine.run(job)
        indices, _values = assemble_result(result.all_pairs(), 3)
        assert set(indices.tolist()) == oracle(data)
