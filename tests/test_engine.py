"""The serial MapReduce engine: semantics, stats, failure handling.

Exercises the classic word-count shape plus setup/cleanup hooks,
combiners, partitioning, key sorting, and counter plumbing.
"""

import pytest

from repro.errors import JobValidationError, TaskFailedError, ValidationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioners import direct_partitioner, hash_partitioner
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import (
    IdentityMapper,
    IdentityReducer,
    InputSplit,
    Mapper,
    Reducer,
)


class WordMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)
            ctx.counters.inc("wc.words")


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def word_count_job(num_reducers=2, combiner=None):
    lines = [
        (0, "the quick brown fox"),
        (1, "the lazy dog"),
        (2, "the quick dog"),
    ]
    return MapReduceJob(
        name="word-count",
        splits=kv_splits(lines, 2),
        mapper_factory=WordMapper,
        reducer_factory=SumReducer,
        combiner_factory=combiner,
        num_reducers=num_reducers,
    )


class TestWordCount:
    def test_counts(self, engine):
        result = engine.run(word_count_job())
        counts = dict(result.all_pairs())
        assert counts == {
            "the": 3,
            "quick": 2,
            "brown": 1,
            "fox": 1,
            "lazy": 1,
            "dog": 2,
        }

    def test_combiner_preserves_result_and_shrinks_shuffle(self, engine):
        plain = engine.run(word_count_job())
        combined = engine.run(word_count_job(combiner=SumReducer))
        assert dict(plain.all_pairs()) == dict(combined.all_pairs())
        assert (
            combined.stats.shuffle_bytes < plain.stats.shuffle_bytes
        )

    def test_keys_sorted_within_reducer(self, engine):
        result = engine.run(word_count_job(num_reducers=1))
        keys = [k for k, _ in result.reducer_outputs[0]]
        assert keys == sorted(keys)

    def test_partitioning_respected(self, engine):
        result = engine.run(word_count_job(num_reducers=3))
        for r, chunk in enumerate(result.reducer_outputs):
            for key, _ in chunk:
                assert hash_partitioner(key, 3) == r

    def test_counters_aggregated(self, engine):
        result = engine.run(word_count_job())
        assert result.stats.counters["wc.words"] == 10
        assert result.stats.counters["mr.records_in"] >= 3


class TestLifecycleHooks:
    def test_setup_and_cleanup_called_once_per_task(self, engine):
        events = []

        class HookMapper(Mapper):
            def setup(self, ctx):
                events.append(("setup", ctx.task_id.index))

            def map(self, key, value, ctx):
                ctx.emit(key, value)

            def cleanup(self, ctx):
                events.append(("cleanup", ctx.task_id.index))

        job = MapReduceJob(
            name="hooks",
            splits=kv_splits([(0, "a"), (1, "b")], 2),
            mapper_factory=HookMapper,
            reducer_factory=IdentityReducer,
        )
        engine.run(job)
        assert events.count(("setup", 0)) == 1
        assert events.count(("cleanup", 1)) == 1

    def test_cleanup_emissions_shuffled(self, engine):
        class EmitAtCleanup(Mapper):
            def setup(self, ctx):
                self.seen = 0

            def map(self, key, value, ctx):
                self.seen += 1

            def cleanup(self, ctx):
                ctx.emit("total", self.seen)

        job = MapReduceJob(
            name="cleanup-emit",
            splits=kv_splits([(i, i) for i in range(10)], 3),
            mapper_factory=EmitAtCleanup,
            reducer_factory=SumReducer,
            num_reducers=1,
        )
        result = engine.run(job)
        assert result.all_pairs() == [("total", 10)]

    def test_cache_visible_in_both_phases(self, engine):
        class CacheReader(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key, ctx.cache["factor"] * value)

        class CacheReducer(Reducer):
            def reduce(self, key, values, ctx):
                ctx.emit(key, sum(values) + ctx.cache["offset"])

        job = MapReduceJob(
            name="cache",
            splits=kv_splits([(0, 1), (1, 2)], 1),
            mapper_factory=CacheReader,
            reducer_factory=CacheReducer,
            num_reducers=1,
            cache=DistributedCache({"factor": 10, "offset": 1}),
        )
        result = engine.run(job)
        assert dict(result.all_pairs()) == {0: 11, 1: 21}


class TestStats:
    def test_task_counts(self, engine):
        result = engine.run(word_count_job(num_reducers=3))
        assert result.stats.num_map_tasks == 2
        assert result.stats.num_reduce_tasks == 3

    def test_per_task_counters_retained(self, engine):
        result = engine.run(word_count_job())
        per_task = [t.counters["wc.words"] for t in result.stats.map_tasks]
        assert sum(per_task) == 10
        assert result.stats.max_task_counter("map", "wc.words") == max(per_task)

    def test_broadcast_bytes_recorded(self, engine):
        job = word_count_job()
        job.cache = DistributedCache({"blob": b"x" * 1000})
        result = engine.run(job)
        assert result.stats.broadcast_bytes >= 1000

    def test_durations_nonnegative(self, engine):
        result = engine.run(word_count_job())
        for t in result.stats.map_tasks + result.stats.reduce_tasks:
            assert t.duration_s >= 0


class TestValidationAndFailure:
    def test_invalid_jobs_rejected(self, engine):
        job = word_count_job()
        job.num_reducers = 0
        with pytest.raises(JobValidationError):
            engine.run(job)

    def test_mapper_factory_type_checked(self, engine):
        job = word_count_job()
        job.mapper_factory = lambda: object()
        with pytest.raises(JobValidationError):
            engine.run(job)

    def test_empty_splits_rejected(self, engine):
        job = word_count_job()
        job.splits = []
        with pytest.raises(JobValidationError):
            engine.run(job)

    def test_map_failure_wrapped(self, engine):
        class Boom(Mapper):
            def map(self, key, value, ctx):
                raise RuntimeError("map exploded")

        job = MapReduceJob(
            name="boom",
            splits=kv_splits([(0, 1)], 1),
            mapper_factory=Boom,
            reducer_factory=IdentityReducer,
        )
        with pytest.raises(TaskFailedError) as exc:
            engine.run(job)
        assert "map-0000" in str(exc.value)
        assert isinstance(exc.value.cause, RuntimeError)

    def test_reduce_failure_wrapped(self, engine):
        class BoomReducer(Reducer):
            def reduce(self, key, values, ctx):
                raise ValueError("reduce exploded")

        job = MapReduceJob(
            name="boom-r",
            splits=kv_splits([(0, 1)], 1),
            mapper_factory=IdentityMapper,
            reducer_factory=BoomReducer,
            num_reducers=1,
        )
        with pytest.raises(TaskFailedError) as exc:
            engine.run(job)
        assert "reduce-0000" in str(exc.value)


class TestShuffleRouting:
    """A buggy partitioner must be named, not silently honoured: a
    negative index used to wrap to the wrong reducer and a too-large
    one raised a bare IndexError."""

    def routed_job(self, partitioner):
        return MapReduceJob(
            name="routed",
            splits=kv_splits([(i, i) for i in range(6)], 2),
            mapper_factory=IdentityMapper,
            reducer_factory=IdentityReducer,
            num_reducers=3,
            partitioner=partitioner,
        )

    def test_negative_index_rejected(self, engine):
        job = self.routed_job(lambda key, n: -1)
        with pytest.raises(ValidationError) as exc:
            engine.run(job)
        message = str(exc.value)
        assert "-1" in message and "[0, 3)" in message

    def test_out_of_range_index_rejected(self, engine):
        job = self.routed_job(lambda key, n: n)
        with pytest.raises(ValidationError) as exc:
            engine.run(job)
        assert "reducer 3" in str(exc.value) and "[0, 3)" in str(exc.value)

    def test_error_names_the_key(self, engine):
        job = self.routed_job(lambda key, n: -2 if key == 4 else key % n)
        with pytest.raises(ValidationError) as exc:
            engine.run(job)
        assert "4" in str(exc.value)

    def test_non_integer_index_rejected(self, engine):
        job = self.routed_job(lambda key, n: "zero")
        with pytest.raises(ValidationError) as exc:
            engine.run(job)
        assert "zero" in str(exc.value)

    def test_numpy_integer_indices_accepted(self, engine):
        np = pytest.importorskip("numpy")
        job = self.routed_job(lambda key, n: np.int64(key % n))
        result = engine.run(job)
        assert sorted(v for _, v in result.all_pairs()) == list(range(6))


class TestMixedKeys:
    def test_unsortable_keys_fall_back_to_repr_order(self, engine):
        class MixedKeyMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value, 1)

        job = MapReduceJob(
            name="mixed",
            splits=kv_splits([(0, "a"), (1, 3), (2, (1, 2))], 1),
            mapper_factory=MixedKeyMapper,
            reducer_factory=SumReducer,
            num_reducers=1,
        )
        result = engine.run(job)
        assert len(result.all_pairs()) == 3


class TestJobResult:
    def test_single_value(self, engine):
        class One(Mapper):
            def map(self, key, value, ctx):
                pass

            def cleanup(self, ctx):
                if ctx.task_id.index == 0:
                    ctx.emit("only", 42)

        job = MapReduceJob(
            name="one",
            splits=kv_splits([(0, 1)], 1),
            mapper_factory=One,
            reducer_factory=IdentityReducer,
            num_reducers=1,
        )
        result = engine.run(job)
        assert result.single_value() == 42
        assert result.all_values() == [42]
