"""The event bus and the engines' event streams.

Pins the observability contract documented in docs/observability.md:
the bus vanishes when detached, all three engines emit the same event
vocabulary for the same pipeline (live on serial/threads, replayed on
processes), the fault layer narrates injections and speculation, and
every emitted stream validates against the typed schema.
"""

import pytest

from repro import skyline
from repro.data.generators import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.metrics import ATTEMPT_OUTCOMES
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.obs.events import (
    ATTEMPT_EVENT_OUTCOMES,
    EVENT_TYPES,
    EventBus,
    EventLog,
    JobStart,
    TaskAttemptEnd,
)
from repro.obs.schema import validate_events

CLUSTER = SimulatedCluster(num_nodes=3)


def _run(engine, n=250, d=3, algorithm="mr-gpmrs"):
    data = generate("anticorrelated", n, d, seed=7)
    return skyline(data, algorithm=algorithm, cluster=CLUSTER, engine=engine)


def _observed_run(make_engine, **kw):
    bus = EventBus()
    log = bus.subscribe(EventLog())
    result = _run(make_engine(bus), **kw)
    return result, log


class TestEventBus:
    def test_inactive_without_subscribers(self):
        bus = EventBus()
        assert not bus.active
        bus.emit(JobStart(job="j", num_mappers=1, num_reducers=1))  # no-op

    def test_subscribe_object_and_callable(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())  # on_event protocol
        seen = []
        bus.subscribe(seen.append)  # bare callable
        assert bus.active
        event = JobStart(job="j", num_mappers=2, num_reducers=1)
        bus.emit(event)
        assert log.events == [event]
        assert seen == [event]

    def test_unsubscribe_deactivates(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        bus.unsubscribe(log)
        assert not bus.active
        bus.emit(JobStart(job="j", num_mappers=1, num_reducers=1))
        assert log.events == []

    def test_rejects_non_subscriber(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(object())

    def test_outcome_vocabulary_pinned_to_attempt_records(self):
        # One vocabulary: events must never drift from AttemptRecord.
        assert ATTEMPT_EVENT_OUTCOMES == ATTEMPT_OUTCOMES

    def test_every_kind_is_its_own_wire_name(self):
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind


class TestSerialEventStream:
    @pytest.fixture(scope="class")
    def run(self):
        return _observed_run(lambda bus: SerialEngine(bus=bus))

    def test_stream_validates(self, run):
        _, log = run
        assert validate_events(log.events) == []

    def test_pipeline_brackets_everything(self, run):
        result, log = run
        kinds = log.kinds()
        assert kinds[0] == "pipeline_start"
        assert kinds[-1] == "pipeline_end"
        (end,) = log.of_kind("pipeline_end")
        assert end.algorithm == "mr-gpmrs"
        assert end.jobs == len(result.stats.jobs)
        assert end.skyline_size == len(result)

    def test_job_lifecycle_order(self, run):
        result, log = run
        starts = log.of_kind("job_start")
        ends = log.of_kind("job_end")
        assert [e.job for e in starts] == [
            j.job_name for j in result.stats.jobs
        ]
        assert [e.job for e in ends] == [e.job for e in starts]
        # per job: start, broadcast, tasks, shuffle, tasks, end
        kinds = log.kinds()
        for name in (e.job for e in starts):
            sequence = [
                e.kind
                for e in log.events
                if getattr(e, "job", None) == name
                and e.kind in ("job_start", "broadcast", "shuffle", "job_end")
            ]
            assert sequence == ["job_start", "broadcast", "shuffle", "job_end"]
        assert kinds.index("job_start") < kinds.index("task_attempt_start")

    def test_one_attempt_pair_per_task(self, run):
        result, log = run
        tasks = sum(
            j.num_map_tasks + j.num_reduce_tasks for j in result.stats.jobs
        )
        assert len(log.of_kind("task_attempt_start")) == tasks
        ends = log.of_kind("task_attempt_end")
        assert len(ends) == tasks
        assert all(e.outcome == "success" and not e.replay for e in ends)

    def test_shuffle_matches_counter(self, run):
        result, log = run
        by_job = {j.job_name: j for j in result.stats.jobs}
        for event in log.of_kind("shuffle"):
            stats = by_job[event.job]
            assert sum(event.partition_records) == sum(
                t.records_out for t in stats.map_tasks
            )
            assert event.total_bytes == stats.shuffle_bytes
            assert len(event.partition_records) == stats.num_reduce_tasks

    def test_broadcast_matches_counter(self, run):
        result, log = run
        by_job = {j.job_name: j for j in result.stats.jobs}
        for event in log.of_kind("broadcast"):
            assert event.payload_bytes == by_job[event.job].broadcast_bytes


class TestParallelEventStreams:
    """Threads emit live, processes replay — same vocabulary either way."""

    @pytest.fixture(scope="class")
    def serial(self):
        return _observed_run(lambda bus: SerialEngine(bus=bus))

    def _task_fingerprint(self, log):
        return sorted(
            (e.job, e.task_id, e.attempt, e.outcome)
            for e in log.of_kind("task_attempt_end")
        )

    def _frame_kinds(self, log):
        """Non-task events in order (task placement is engine timing;
        ``shm_*`` frames are process-engine substrate diagnostics)."""
        return [
            e.kind
            for e in log.events
            if not e.kind.startswith(("task_attempt", "shm_"))
        ]

    def test_thread_engine_emits_live(self, serial):
        result, log = _observed_run(
            lambda bus: ThreadPoolEngine(max_workers=4, bus=bus)
        )
        assert validate_events(log.events) == []
        assert all(
            not e.replay
            for e in log.events
            if e.kind.startswith("task_attempt")
        )
        assert self._task_fingerprint(log) == self._task_fingerprint(
            serial[1]
        )
        assert self._frame_kinds(log) == self._frame_kinds(serial[1])
        assert result.indices.tolist() == serial[0].indices.tolist()

    def test_process_engine_replays(self, serial):
        result, log = _observed_run(
            lambda bus: ProcessPoolEngine(max_workers=2, bus=bus)
        )
        assert validate_events(log.events) == []
        task_events = [
            e for e in log.events if e.kind.startswith("task_attempt")
        ]
        assert task_events and all(e.replay for e in task_events)
        assert self._task_fingerprint(log) == self._task_fingerprint(
            serial[1]
        )
        assert self._frame_kinds(log) == self._frame_kinds(serial[1])
        assert result.indices.tolist() == serial[0].indices.tolist()
        # The zero-copy substrate narrates its lifecycle: block splits
        # were promoted into shared segments for each job.
        shared = log.of_kind("shm_blocks_shared")
        assert shared and all(
            e.segments >= 1 and e.payload_bytes > 0 for e in shared
        )


class TestFaultEvents:
    #: Every task fails its first attempt; surviving attempts straggle
    #: at 25% and get speculative backups.
    PLAN = FaultPlan(
        seed=13,
        fail_rate=1.0,
        max_failures_per_task=1,
        slow_rate=0.25,
        num_nodes=5,
    )

    def _engine(self, bus):
        return SerialEngine(
            retry=RetryPolicy(max_attempts=self.PLAN.min_attempts()),
            faults=self.PLAN,
            speculative=True,
            bus=bus,
        )

    @pytest.fixture(scope="class")
    def run(self):
        return _observed_run(self._engine)

    def test_stream_validates(self, run):
        _, log = run
        assert validate_events(log.events) == []

    def test_every_task_reports_its_injected_failure(self, run):
        result, log = run
        tasks = sum(
            j.num_map_tasks + j.num_reduce_tasks for j in result.stats.jobs
        )
        faults = log.of_kind("fault_injected")
        assert len(faults) == tasks  # fail_rate 1.0, one budgeted failure
        failed = [
            e for e in log.of_kind("task_attempt_end") if e.outcome == "failed"
        ]
        assert len(failed) == tasks
        assert all(e.error for e in failed)

    def test_speculation_narrated(self, run):
        result, log = run
        launches = log.of_kind("speculation_launched")
        assert launches  # slow_rate 0.25 over dozens of tasks
        # Each race ends in either killed+speculative (backup won) or a
        # straggler success plus a failed backup; backup ends carry the
        # speculative flag regardless of outcome.
        backup_ends = [
            e for e in log.of_kind("task_attempt_end") if e.speculative
        ]
        assert len(backup_ends) == len(launches)
        recorded = {
            o
            for j in result.stats.jobs
            for t in list(j.map_tasks) + list(j.reduce_tasks)
            for o in (a.outcome for a in t.attempts)
        }
        emitted = {e.outcome for e in log.of_kind("task_attempt_end")}
        assert emitted == recorded

    def test_observation_does_not_perturb(self, run):
        observed, _ = run
        bare = _run(self._engine(bus=None))
        assert observed.indices.tolist() == bare.indices.tolist()
        assert (
            observed.stats.counters().as_dict()
            == bare.stats.counters().as_dict()
        )


class TestReplayedFaultEvents:
    def test_process_pool_replays_faults_and_speculation(self):
        plan = TestFaultEvents.PLAN
        _, log = _observed_run(
            lambda bus: ProcessPoolEngine(
                max_workers=2,
                retry=RetryPolicy(max_attempts=plan.min_attempts()),
                faults=plan,
                speculative=True,
                bus=bus,
            )
        )
        assert validate_events(log.events) == []
        assert log.of_kind("fault_injected")
        assert all(e.replay for e in log.of_kind("fault_injected"))
        ends = log.of_kind("task_attempt_end")
        assert {e.outcome for e in ends} >= {"success", "failed"}


class TestConcurrentProducers:
    """The bus/log under concurrent producers, and the canonical merge.

    Fleet workers and engine threads hand events and span-record
    batches over from multiple threads; the bus must drop nothing,
    each producer's own order must survive, and the downstream merge
    (:func:`repro.obs.serve_trace.merge_span_records`) must not depend
    on which producer delivered first.
    """

    PRODUCERS = 8
    PER_PRODUCER = 200

    def _emit_concurrently(self, bus):
        import threading

        from repro.obs.events import ServeQueryServed

        barrier = threading.Barrier(self.PRODUCERS)

        def produce(worker):
            barrier.wait()
            for i in range(self.PER_PRODUCER):
                bus.emit(
                    ServeQueryServed(
                        request_id=worker * self.PER_PRODUCER + i,
                        epoch=0,
                        cache_hit=False,
                        latency_s=1e-4,
                        result_size=1,
                        tenant=f"t{worker}",
                        at_s=i * 1e-3,
                    )
                )

        threads = [
            threading.Thread(target=produce, args=(w,))
            for w in range(self.PRODUCERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_no_event_is_dropped_and_producer_order_survives(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        self._emit_concurrently(bus)
        assert len(log.events) == self.PRODUCERS * self.PER_PRODUCER
        assert validate_events(log.events) == []
        by_tenant = {}
        for event in log.events:
            by_tenant.setdefault(event.tenant, []).append(event.request_id)
        # Interleaving across producers is arbitrary; within one
        # producer the log preserves emission order exactly.
        for worker in range(self.PRODUCERS):
            ids = by_tenant[f"t{worker}"]
            assert ids == sorted(ids)
            assert len(ids) == self.PER_PRODUCER

    def test_merge_of_concurrent_batches_is_deterministic(self):
        from repro.obs.serve_trace import merge_span_records

        bus = EventBus()
        log = bus.subscribe(EventLog())
        self._emit_concurrently(bus)
        batches = {}
        for event in log.events:
            batches.setdefault(event.tenant, []).append(event.as_dict())
        ordered = [batches[f"t{w}"] for w in range(self.PRODUCERS)]
        merged = merge_span_records(ordered)
        assert merged == merge_span_records(reversed(ordered))
        assert len(merged) == self.PRODUCERS * self.PER_PRODUCER
        # Virtual timestamp first, request id second: one total order.
        keys = [(r["at_s"], r["request_id"]) for r in merged]
        assert keys == sorted(keys)


class TestEventPayloads:
    def test_as_dict_round_trip(self):
        event = TaskAttemptEnd(
            job="j", task_id="map-0000", attempt=0, outcome="success"
        )
        payload = event.as_dict()
        assert payload["kind"] == "task_attempt_end"
        assert payload["task_id"] == "map-0000"
        rebuilt = EVENT_TYPES[payload.pop("kind")](**payload)
        assert rebuilt == event

    def test_events_are_frozen(self):
        event = JobStart(job="j", num_mappers=1, num_reducers=1)
        with pytest.raises(Exception):
            event.job = "other"

    def test_validate_events_flags_garbage(self):
        bad = TaskAttemptEnd(
            job="j",
            task_id="t",
            attempt=0,
            outcome="success",
            duration_s=-1.0,
        )
        assert validate_events([bad])
        assert validate_events([object()])
