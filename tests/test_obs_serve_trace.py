"""Unit tests for the serving-path tracer (repro.obs.serve_trace).

The tracer's contract: frontends drive the op lifecycle on the virtual
clock, cores contribute *relative* phases rebased at commit, fleet
workers batch ``(rpc_seq, op, ctx, work)`` records stitched onto the
router-registered interval, and every output order is a total sort —
independent of thread/pipe interleaving.
"""

import pickle
import random

import pytest

from repro.obs.schema import validate_chrome_trace
from repro.obs.serve_trace import (
    ServeTracer,
    TraceContext,
    merge_span_records,
    sort_spans,
)
from repro.obs.spans import chrome_trace


class TestTraceContext:
    def test_identity_is_value_based_and_hashable(self):
        a = TraceContext("query", 7, "t0")
        b = TraceContext("query", 7, "t0")
        assert a == b
        assert {a: 1}[b] == 1
        assert a != TraceContext("insert", 7, "t0")

    def test_crosses_pipes_by_value(self):
        ctx = TraceContext("batch", 3, "t2")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_label_and_default_tenant(self):
        ctx = TraceContext("delete", 12)
        assert ctx.label() == "delete#12"
        assert ctx.tenant == "default"


class TestQueryLifecycle:
    def test_commit_rebases_phases_onto_start_instant(self):
        tracer = ServeTracer()
        ctx = tracer.begin_query(5, "t1")
        tracer.phase("cache_probe", 0.0, 0.001, track="cache")
        tracer.phase("index_read", 0.001, 0.004, track="index", epoch=2)
        tracer.commit_query(
            ctx, 1.0, 1.0, 1.004, cache_hit=False, result_size=9, epoch=2
        )
        spans = {s.name: s for s in tracer.serve_spans()}
        assert spans["cache_probe"].start_s == pytest.approx(1.0)
        assert spans["index_read"].end_s == pytest.approx(1.004)
        assert spans["index_read"].args["epoch"] == 2
        assert spans["index_read"].args["request_id"] == 5
        assert spans["query#5"].track == "frontend"

    def test_wait_span_only_when_queued(self):
        tracer = ServeTracer()
        ctx = tracer.begin_query(1, "t0")
        tracer.commit_query(
            ctx, 2.0, 2.0, 2.001, cache_hit=True, result_size=1, epoch=0
        )
        assert not [s for s in tracer.serve_spans() if s.track == "queue"]
        ctx = tracer.begin_query(2, "t0")
        tracer.commit_query(
            ctx, 3.0, 3.5, 3.6, cache_hit=True, result_size=1, epoch=0
        )
        (wait,) = [s for s in tracer.serve_spans() if s.track == "queue"]
        assert wait.args["wait_s"] == pytest.approx(0.5)

    def test_reject_drops_pending_phases(self):
        tracer = ServeTracer()
        tracer.begin_query(3, "t4")
        tracer.phase("cache_probe", 0.0, 0.001, track="cache")
        tracer.reject_query(3, "t4", 1.0, 1.0, "shed")
        spans = tracer.serve_spans()
        assert [s.name for s in spans] == ["shed#3"]
        assert spans[0].track == "admission"
        assert spans[0].outcome == "failed"
        assert tracer.current_ctx is None

    def test_clear_phases_supports_repricing(self):
        tracer = ServeTracer()
        ctx = tracer.begin_query(4, "t0")
        tracer.phase("index_read", 0.0, 0.9, track="index")
        tracer.clear_phases()
        tracer.phase("index_read", 0.0, 0.1, track="index")
        tracer.commit_query(
            ctx, 0.0, 0.0, 0.1, cache_hit=False, result_size=2, epoch=1
        )
        (read,) = [s for s in tracer.serve_spans() if s.name == "index_read"]
        assert read.end_s == pytest.approx(0.1)


class TestMutationLifecycle:
    def test_mutation_seq_increments_independently_of_queries(self):
        tracer = ServeTracer()
        a = tracer.begin_mutation("insert")
        tracer.commit_mutation(a, 0.0, 0.0, 0.1, pairs=3, epoch=1)
        b = tracer.begin_mutation("batch")
        tracer.commit_mutation(b, 0.2, 0.2, 0.3, pairs=5, epoch=2)
        assert (a.seq, b.seq) == (0, 1)

    def test_per_shard_repair_spans_tile_under_frontend_span(self):
        tracer = ServeTracer()
        ctx = tracer.begin_mutation("batch")
        tracer.commit_mutation(
            ctx,
            0.0,
            0.0,
            0.4,
            pairs=40,
            epoch=3,
            per_shard_pairs={1: 10, 0: 40},
            seconds_per_pair=0.01,
        )
        repairs = [
            s for s in tracer.serve_spans() if s.track.startswith("shard-")
        ]
        # Total order sorts on (start, end, ...): the shorter repair
        # (shard-1, 10 pairs) precedes the longer one (shard-0, 40).
        assert [s.track for s in repairs] == ["shard-1", "shard-0"]
        assert repairs[0].end_s == pytest.approx(0.1)
        assert repairs[1].end_s == pytest.approx(0.4)
        assert all(s.args["mutation_seq"] == ctx.seq for s in repairs)


class TestFleetStitching:
    def test_records_place_at_registered_interval(self):
        tracer = ServeTracer()
        ctx = tracer.begin_query(9, "t2")
        tracer.commit_query(
            ctx, 1.0, 1.0, 1.02, cache_hit=False, result_size=4, epoch=0
        )
        count = tracer.ingest_fleet_records(2, [(0, "skyline", ctx, 17)])
        assert count == 1
        (span,) = tracer.fleet_spans()
        assert span.track == "worker-2"
        assert (span.start_s, span.end_s) == (1.0, 1.02)
        assert span.args["work"] == 17
        assert span.args["request_id"] == 9

    def test_uncommitted_context_records_are_skipped(self):
        tracer = ServeTracer()
        ghost = TraceContext("query", 99, "t0")
        assert tracer.ingest_fleet_records(0, [(0, "skyline", ghost, 1)]) == 0
        assert tracer.fleet_spans() == []

    def test_fleet_clock_appears_only_with_worker_spans(self):
        tracer = ServeTracer()
        ctx = tracer.begin_query(0, "t0")
        tracer.commit_query(
            ctx, 0.0, 0.0, 0.01, cache_hit=False, result_size=1, epoch=0
        )
        assert set(tracer.clocks()) == {"serve"}
        tracer.ingest_fleet_records(0, [(0, "skyline", ctx, 2)])
        assert set(tracer.clocks()) == {"serve", "fleet"}
        assert validate_chrome_trace(chrome_trace(tracer.clocks())) == []


class TestDeterministicOrder:
    def _spans(self):
        tracer = ServeTracer()
        for rid in range(20):
            ctx = tracer.begin_query(rid, f"t{rid % 3}")
            tracer.phase("index_read", 0.0, 0.001, track="index")
            tracer.commit_query(
                ctx,
                rid * 0.01,
                rid * 0.01,
                rid * 0.01 + 0.002,
                cache_hit=False,
                result_size=1,
                epoch=0,
            )
        return tracer.serve_spans()

    def test_sort_spans_is_interleaving_independent(self):
        spans = self._spans()
        shuffled = list(spans)
        random.Random(3).shuffle(shuffled)
        assert sort_spans(shuffled) == spans

    def test_merge_span_records_ignores_batch_arrival_order(self):
        batches = [
            [
                {"at_s": 0.2, "request_id": 4, "shard": 1},
                {"at_s": 0.1, "request_id": 2, "shard": 1},
            ],
            [
                {"at_s": 0.1, "request_id": 7, "shard": 0},
                {"at_s": 0.2, "request_id": 4, "shard": 0},
            ],
        ]
        merged = merge_span_records(batches)
        assert merged == merge_span_records(reversed(batches))
        assert [(r["at_s"], r["request_id"]) for r in merged] == [
            (0.1, 2),
            (0.1, 7),
            (0.2, 4),
            (0.2, 4),
        ]
        # The tie at (0.2, 4) breaks on content, not producer order.
        assert [r["shard"] for r in merged[-2:]] == [0, 1]
