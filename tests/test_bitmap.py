"""Bitmap skyline (Tan et al.) on rank-encoded data."""

import numpy as np
import pytest

from repro.core.bitmap import (
    BitmapIndex,
    bitmap_skyline_indices,
    distinct_value_counts,
)
from repro.core.reference import bruteforce_skyline_indices
from repro.errors import DataError


def discrete(rng, n, d, levels=8):
    return rng.integers(0, levels, (n, d)).astype(float)


class TestBitmapIndex:
    def test_ranks_are_dense_ascending(self):
        data = np.array([[3.0], [1.0], [3.0], [2.0]])
        index = BitmapIndex(data)
        assert index.ranks[0].tolist() == [2, 0, 2, 1]
        assert index.distinct_counts.tolist() == [3]

    def test_le_and_lt_slices(self):
        data = np.array([[1.0], [2.0], [3.0]])
        index = BitmapIndex(data)
        assert index.le_slice(0, 1).tolist() == [True, True, False]
        assert index.lt_slice(0, 1).tolist() == [True, False, False]

    def test_is_dominated(self):
        data = np.array([[1.0, 1.0], [2.0, 2.0], [1.0, 2.0]])
        index = BitmapIndex(data)
        assert not index.is_dominated(0)
        assert index.is_dominated(1)
        assert index.is_dominated(2)

    def test_requires_2d(self):
        with pytest.raises(DataError):
            BitmapIndex(np.zeros(4))


class TestBitmapSkyline:
    def test_matches_oracle_on_discrete_data(self, rng):
        data = discrete(rng, 150, 3)
        got = set(bitmap_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_matches_oracle_on_continuous_data(self, rng):
        # Correct (if pointless) on continuous values too.
        data = rng.random((60, 3))
        got = set(bitmap_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_duplicates_kept(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [3.0, 0.0]])
        assert sorted(bitmap_skyline_indices(data).tolist()) == [0, 1, 2]

    def test_empty(self):
        assert bitmap_skyline_indices(np.empty((0, 2))).shape == (0,)


class TestDistinctCounts:
    def test_counts(self):
        data = np.array([[1.0, 5.0], [1.0, 6.0], [2.0, 5.0]])
        assert distinct_value_counts(data).tolist() == [2, 2]

    def test_requires_2d(self):
        with pytest.raises(DataError):
            distinct_value_counts(np.zeros(3))
