"""Property-based tests (hypothesis) on the core invariants.

These exercise the data structures with adversarial inputs: duplicate
rows, boundary values, degenerate dimensions, tiny and empty sets.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import dominance
from repro.core.bnl import bnl_skyline_indices
from repro.core.pointset import PointSet
from repro.core.reference import bruteforce_skyline_indices
from repro.core.sfs import sfs_skyline_indices
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.groups import generate_independent_groups, merge_groups
from repro.grid.regions import in_anti_dominating_region


def datasets(max_rows=40, max_dims=4):
    """Small float datasets; values drawn from a coarse lattice so
    duplicates and boundary collisions actually happen."""
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(0, max_rows), st.integers(1, max_dims)
        ),
        elements=st.sampled_from(
            [0.0, 0.1, 0.25, 0.3, 0.5, 0.5, 0.75, 0.9, 1.0]
        ),
    )


class TestDominanceProperties:
    @given(
        a=st.lists(st.floats(-10, 10), min_size=1, max_size=5),
        b=st.lists(st.floats(-10, 10), min_size=1, max_size=5),
    )
    def test_antisymmetry(self, a, b):
        assume(len(a) == len(b))
        assert not (dominance.dominates(a, b) and dominance.dominates(b, a))

    @given(v=st.lists(st.floats(-10, 10), min_size=1, max_size=5))
    def test_irreflexive(self, v):
        assert not dominance.dominates(v, v)

    @given(
        rows=hnp.arrays(
            np.float64,
            st.tuples(st.just(3), st.integers(1, 4)),
            elements=st.floats(0, 1, width=32),
        )
    )
    def test_transitivity(self, rows):
        a, b, c = rows[0], rows[1], rows[2]
        if dominance.dominates(a, b) and dominance.dominates(b, c):
            assert dominance.dominates(a, c)


class TestSkylineAlgorithmsAgree:
    @settings(max_examples=60, deadline=None)
    @given(data=datasets())
    def test_sfs_equals_bruteforce(self, data):
        got = set(sfs_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    @settings(max_examples=60, deadline=None)
    @given(data=datasets())
    def test_bnl_equals_bruteforce(self, data):
        got = set(bnl_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    @settings(max_examples=40, deadline=None)
    @given(data=datasets())
    def test_skyline_is_undominated_and_dominating(self, data):
        """Soundness + completeness of the skyline definition."""
        sky = set(sfs_skyline_indices(data).tolist())
        n = data.shape[0]
        for i in range(n):
            dominated = any(
                dominance.dominates(data[j], data[i])
                for j in range(n)
                if j != i
            )
            assert (i in sky) == (not dominated)


class TestPointSetProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=datasets(max_rows=30))
    def test_split_merge_equals_whole(self, data):
        assume(data.shape[0] >= 2)
        half = data.shape[0] // 2
        left = PointSet.from_array(data[:half]).local_skyline()
        right = PointSet(
            np.arange(half, data.shape[0]), data[half:]
        ).local_skyline()
        merged = left.merge_skyline(right)
        assert merged.id_set() == set(
            bruteforce_skyline_indices(data).tolist()
        )

    @settings(max_examples=50, deadline=None)
    @given(data=datasets(max_rows=30))
    def test_local_skyline_idempotent(self, data):
        ps = PointSet.from_array(data).local_skyline()
        again = ps.local_skyline()
        assert again.id_set() == ps.id_set()


class TestGridProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        data=datasets(max_rows=30, max_dims=3),
        n=st.integers(1, 5),
    )
    def test_cell_assignment_in_range(self, data, n):
        assume(data.shape[0] >= 1)
        grid = Grid.unit(n, data.shape[1])
        cells = grid.cell_indices(data)
        assert (cells >= 0).all()
        assert (cells < grid.num_partitions).all()

    @settings(max_examples=50, deadline=None)
    @given(
        data=datasets(max_rows=30, max_dims=3),
        n=st.integers(1, 5),
    )
    def test_pruning_never_discards_skyline_tuples(self, data, n):
        """The load-bearing safety property of Equation 2."""
        assume(data.shape[0] >= 1)
        grid = Grid.unit(n, data.shape[1])
        pruned = Bitstring.from_data(grid, data).prune_dominated()
        cells = grid.cell_indices(data)
        for i in bruteforce_skyline_indices(data):
            assert pruned[int(cells[i])]

    @settings(max_examples=40, deadline=None)
    @given(
        bits=hnp.arrays(np.bool_, st.just(16)),
        reducers=st.integers(1, 6),
    )
    def test_group_generation_covers_and_respects_adr(self, bits, reducers):
        grid = Grid.unit(4, 2)
        bs = Bitstring(grid, bits)
        groups = generate_independent_groups(grid, bs)
        present = set(bs.set_indices().tolist())
        covered = {p for g in groups for p in g.members}
        assert covered == present
        for g in groups:
            members = set(g.members)
            for p in members:
                for q in present:
                    if in_anti_dominating_region(grid, q, p):
                        assert q in members

    @settings(max_examples=40, deadline=None)
    @given(
        bits=hnp.arrays(np.bool_, st.just(16)),
        reducers=st.integers(1, 6),
        strategy=st.sampled_from(["computation", "communication"]),
    )
    def test_merged_responsibility_partition(self, bits, reducers, strategy):
        grid = Grid.unit(4, 2)
        bs = Bitstring(grid, bits)
        groups = generate_independent_groups(grid, bs)
        merged = merge_groups(groups, reducers, strategy)
        assert len(merged) <= max(1, reducers) or not groups
        responsible = [p for m in merged for p in m.responsible]
        assert sorted(responsible) == sorted(set(responsible))
        assert set(responsible) == set(bs.set_indices().tolist())


class TestEndToEndProperty:
    @settings(max_examples=25, deadline=None)
    @given(data=datasets(max_rows=25, max_dims=3), ppd=st.integers(1, 4))
    def test_gpmrs_equals_bruteforce(self, data, ppd):
        assume(data.shape[0] >= 1)
        from repro import skyline

        result = skyline(
            data, algorithm="mr-gpmrs", ppd=ppd, num_reducers=3
        )
        assert set(result.indices.tolist()) == set(
            bruteforce_skyline_indices(data).tolist()
        )
