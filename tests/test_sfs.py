"""Sort-Filter-Skyline tests."""

import numpy as np
import pytest

from repro.core.dominance import DominanceCounter
from repro.core.reference import bruteforce_skyline_indices
from repro.core.sfs import sfs_skyline, sfs_skyline_indices
from repro.errors import DataError


class TestSFS:
    def test_matches_oracle(self, rng):
        data = rng.random((200, 3))
        got = set(sfs_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_matches_oracle_anticorrelated(self):
        from repro.data.generators import anticorrelated

        data = anticorrelated(150, 4, seed=3)
        got = set(sfs_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_results_sorted_by_score(self, rng):
        data = rng.random((100, 3))
        idx = sfs_skyline_indices(data)
        scores = data[idx].sum(axis=1)
        assert np.all(np.diff(scores) >= 0)

    def test_empty(self):
        assert sfs_skyline_indices(np.empty((0, 2))).shape == (0,)

    def test_duplicates_kept(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [0.5, 2.0]])
        assert sorted(sfs_skyline_indices(data).tolist()) == [0, 1, 2]

    def test_custom_monotone_key(self, rng):
        data = rng.random((80, 2)) + 1.0
        got = set(
            sfs_skyline_indices(
                data, key=lambda a: np.log(a).sum(axis=1)
            ).tolist()
        )
        assert got == set(bruteforce_skyline_indices(data).tolist())

    def test_key_length_validated(self, rng):
        with pytest.raises(DataError):
            sfs_skyline_indices(
                rng.random((10, 2)), key=lambda a: np.ones(3)
            )

    def test_counter_charged(self, rng):
        counter = DominanceCounter()
        sfs_skyline_indices(rng.random((50, 2)), counter=counter)
        assert counter.pairs > 0

    def test_requires_2d(self):
        with pytest.raises(DataError):
            sfs_skyline_indices(np.zeros(4))

    def test_sfs_skyline_returns_rows(self, rng):
        data = rng.random((60, 3))
        rows = sfs_skyline(data)
        expect = data[bruteforce_skyline_indices(data)]
        assert {tuple(r) for r in rows} == {tuple(r) for r in expect}

    def test_negative_values_fine(self):
        data = np.array([[-1.0, -1.0], [0.0, 0.0], [-2.0, 1.0]])
        got = set(sfs_skyline_indices(data).tolist())
        assert got == set(bruteforce_skyline_indices(data).tolist())
