"""Unit coverage of the columnar block fast path building blocks."""

import numpy as np
import pytest

from repro.core.dominance import dominated_mask, dominates
from repro.core.pointset import PointSet
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.io import npy_block_splits, npy_splits
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.mapreduce.partitioners import single_partitioner
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.splits import block_splits, contiguous_splits
from repro.mapreduce.types import (
    BlockInputSplit,
    IdentityReducer,
    Mapper,
    supports_block_map,
)


def _data(n=50, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d))


class RecordOnlyMapper(Mapper):
    def setup(self, ctx):
        self.seen = []

    def map(self, key, value, ctx):
        self.seen.append(int(key))
        ctx.emit("k", int(key))


class BlockAwareMapper(RecordOnlyMapper):
    def map_block(self, points, ctx):
        for row_id in points.ids.tolist():
            ctx.emit("k", row_id)


class TestBlockInputSplit:
    def test_iterates_as_records_for_legacy_mappers(self):
        data = _data(7)
        split = BlockInputSplit(
            split_id=0, points=PointSet(np.arange(7), data)
        )
        records = list(split)
        assert [k for k, _v in records] == list(range(7))
        assert np.array_equal(np.vstack([v for _k, v in records]), data)
        assert len(split) == 7

    def test_contiguous_splits_are_block_splits(self):
        splits = contiguous_splits(_data(10), 3)
        assert all(isinstance(s, BlockInputSplit) for s in splits)
        assert sum(len(s.points) for s in splits) == 10
        assert block_splits is contiguous_splits

    def test_supports_block_map_detection(self):
        assert not supports_block_map(RecordOnlyMapper())
        assert supports_block_map(BlockAwareMapper())


class TestEnginePathSelection:
    def _run(self, engine, mapper_factory):
        job = MapReduceJob(
            name="path-test",
            splits=contiguous_splits(_data(20), 4),
            mapper_factory=mapper_factory,
            reducer_factory=IdentityReducer,
            num_reducers=1,
            partitioner=single_partitioner,
        )
        result = engine.run(job)
        return sorted(v for _k, v in result.all_pairs())

    def test_legacy_mapper_runs_on_block_splits(self):
        assert self._run(SerialEngine(), RecordOnlyMapper) == list(range(20))

    def test_block_mapper_both_paths_agree(self):
        fast = self._run(SerialEngine(), BlockAwareMapper)
        slow = self._run(SerialEngine(block_path=False), BlockAwareMapper)
        assert fast == slow == list(range(20))

    def test_counters_identical_across_paths(self):
        def counters(engine):
            job = MapReduceJob(
                name="ctr",
                splits=contiguous_splits(_data(30), 3),
                mapper_factory=BlockAwareMapper,
                reducer_factory=IdentityReducer,
                num_reducers=1,
                partitioner=single_partitioner,
            )
            return engine.run(job).stats.counters.as_dict()

        assert counters(SerialEngine()) == counters(
            SerialEngine(block_path=False)
        )


class TestSplitBy:
    def test_matches_boolean_mask_grouping(self):
        points = PointSet(np.arange(40), _data(40))
        keys = np.random.default_rng(3).integers(0, 5, 40)
        got = points.split_by(keys)
        assert [k for k, _ in got] == sorted(set(keys.tolist()))
        for key, block in got:
            expect = np.flatnonzero(keys == key)
            assert np.array_equal(block.ids, expect)
            assert np.array_equal(block.values, points.values[expect])

    def test_empty(self):
        points = PointSet.empty(3)
        assert points.split_by(np.empty(0, dtype=np.int64)) == []

    def test_length_mismatch_raises(self):
        points = PointSet(np.arange(4), _data(4))
        with pytest.raises(Exception):
            points.split_by(np.zeros(3, dtype=np.int64))


class TestNpyBlockSplits:
    def test_same_records_as_row_splits(self, tmp_path):
        data = _data(23)
        path = str(tmp_path / "d.npy")
        np.save(path, data)
        rows = [
            (k, v.tolist()) for s in npy_splits(path, 4) for k, v in s
        ]
        blocks = [
            (k, v.tolist()) for s in npy_block_splits(path, 4) for k, v in s
        ]
        assert rows == blocks

    def test_splits_carry_pointsets(self, tmp_path):
        data = _data(12)
        path = str(tmp_path / "d.npy")
        np.save(path, data)
        splits = npy_block_splits(path, 3)
        assert all(isinstance(s.points, PointSet) for s in splits)
        assert np.array_equal(
            np.vstack([s.points.values for s in splits]), data
        )


class TestDominatedMaskRechunking:
    def test_matches_naive_on_heavy_elimination(self):
        """Early chunks eliminate most candidates; later chunks must
        still produce exact results with the enlarged step."""
        rng = np.random.default_rng(11)
        candidates = rng.random((300, 4)) + 1.0  # mostly dominated
        against = np.vstack([rng.random((50, 4)), rng.random((50, 4)) + 2.0])
        got = dominated_mask(candidates, against)
        naive = np.array(
            [
                any(dominates(a, c) for a in against)
                for c in candidates
            ]
        )
        assert np.array_equal(got, naive)

    def test_all_candidates_eliminated_early_stops(self):
        candidates = np.ones((10, 3)) * 5.0
        against = np.vstack([np.zeros((1, 3)), np.ones((500, 3)) * 9.0])
        assert dominated_mask(candidates, against).all()


class TestCacheMemoization:
    def test_payload_bytes_computed_once(self):
        cache = DistributedCache({"a": np.zeros(100), "b": "text"})
        first = cache.payload_bytes()
        assert first == sum(
            payload_size(v) for v in (np.zeros(100), "text")
        )
        assert cache.payload_bytes() is not None
        assert cache._payload_bytes == first  # memo slot filled
        assert cache.payload_bytes() == first

    def test_empty_cache(self):
        assert DistributedCache.empty().payload_bytes() == 0


class TestEngineConstruction:
    def test_process_pool_resolves_workers(self):
        engine = ProcessPoolEngine(max_workers=3)
        assert engine._resolved_workers() == 3
        assert ProcessPoolEngine()._resolved_workers() >= 1

    def test_thread_pool_repr(self):
        assert "max_workers=5" in repr(ThreadPoolEngine(max_workers=5))
