"""Task-retry fault tolerance (Hadoop's max-attempts behaviour)."""

import threading

import pytest

from repro.errors import TaskFailedError, ValidationError
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.faults import RetryPolicy
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadPoolEngine
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import IdentityReducer, Mapper, Reducer


class FlakyOnce:
    """Injects one failure per task id, then succeeds."""

    def __init__(self):
        self.failed = set()
        self.lock = threading.Lock()

    def maybe_fail(self, task_key):
        with self.lock:
            if task_key not in self.failed:
                self.failed.add(task_key)
                raise RuntimeError(f"injected failure in {task_key}")


def make_flaky_mapper(flaky: FlakyOnce):
    class FlakyMapper(Mapper):
        def map(self, key, value, ctx):
            flaky.maybe_fail(("map", ctx.task_id.index))
            ctx.emit(key % 2, value)

    return FlakyMapper


def make_flaky_reducer(flaky: FlakyOnce):
    class FlakyReducer(Reducer):
        def reduce(self, key, values, ctx):
            flaky.maybe_fail(("reduce", ctx.task_id.index))
            ctx.emit(key, sum(values))

    return FlakyReducer


def flaky_job(flaky, reducer_factory=None):
    return MapReduceJob(
        name="flaky",
        splits=kv_splits([(i, i) for i in range(12)], 3),
        mapper_factory=make_flaky_mapper(flaky),
        reducer_factory=reducer_factory or IdentityReducer,
        num_reducers=2,
    )


class TestSerialRetries:
    def test_default_single_attempt_fails(self):
        with pytest.raises(TaskFailedError):
            SerialEngine().run(flaky_job(FlakyOnce()))

    def test_retry_recovers_map_failures(self):
        engine = SerialEngine(max_attempts=2)
        result = engine.run(flaky_job(FlakyOnce()))
        values = sorted(v for _, v in result.all_pairs())
        assert values == list(range(12))

    def test_retry_recovers_reduce_failures(self):
        flaky = FlakyOnce()
        job = MapReduceJob(
            name="flaky-r",
            splits=kv_splits([(i, i) for i in range(12)], 3),
            mapper_factory=make_flaky_mapper(FlakyOnce()),  # never fails twice
            reducer_factory=make_flaky_reducer(flaky),
            num_reducers=2,
        )
        result = SerialEngine(max_attempts=3).run(job)
        assert sum(v for _, v in result.all_pairs()) == sum(range(12))

    def test_retried_task_state_is_fresh(self):
        """A retried attempt must not see partial output of the failed
        attempt (fresh mapper, fresh context)."""
        flaky = FlakyOnce()

        class EmitThenFail(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key, value)  # emit BEFORE possibly failing
                flaky.maybe_fail(("map", ctx.task_id.index))

        job = MapReduceJob(
            name="fresh",
            splits=kv_splits([(i, i) for i in range(6)], 2),
            mapper_factory=EmitThenFail,
            reducer_factory=IdentityReducer,
            num_reducers=1,
        )
        result = SerialEngine(max_attempts=2).run(job)
        # no duplicated records from the failed first attempts
        assert len(result.all_pairs()) == 6

    def test_exhausted_attempts_raise_with_cause(self):
        class AlwaysFails(Mapper):
            def map(self, key, value, ctx):
                raise RuntimeError("persistent")

        job = MapReduceJob(
            name="doomed",
            splits=kv_splits([(0, 1)], 1),
            mapper_factory=AlwaysFails,
            reducer_factory=IdentityReducer,
        )
        with pytest.raises(TaskFailedError) as exc:
            SerialEngine(max_attempts=3).run(job)
        assert "persistent" in str(exc.value)

    def test_validates_max_attempts(self):
        with pytest.raises(ValidationError):
            SerialEngine(max_attempts=0)

    def test_attempt_history_recorded_on_recovery(self):
        engine = SerialEngine(max_attempts=2)
        result = engine.run(flaky_job(FlakyOnce()))
        for task in result.stats.map_tasks:
            outcomes = [a.outcome for a in task.attempts]
            assert outcomes == ["failed", "success"]


class TestNonRetryableErrors:
    """Programming/validation bugs fail identically on every attempt:
    retrying them burns the budget and masks the real defect."""

    def make_counting_mapper(self, error):
        calls = []

        class BrokenMapper(Mapper):
            def map(self, key, value, ctx):
                calls.append(ctx.task_id.index)
                raise error

        return BrokenMapper, calls

    def one_split_job(self, mapper_factory):
        return MapReduceJob(
            name="broken",
            splits=kv_splits([(0, 1)], 1),
            mapper_factory=mapper_factory,
            reducer_factory=IdentityReducer,
        )

    def test_validation_error_not_retried(self):
        factory, calls = self.make_counting_mapper(
            ValidationError("bad config")
        )
        with pytest.raises(TaskFailedError) as exc:
            SerialEngine(max_attempts=4).run(self.one_split_job(factory))
        assert len(calls) == 1  # no burned attempts
        assert "bad config" in str(exc.value)

    def test_type_error_not_retried(self):
        factory, calls = self.make_counting_mapper(TypeError("bad call"))
        with pytest.raises(TaskFailedError):
            SerialEngine(max_attempts=4).run(self.one_split_job(factory))
        assert len(calls) == 1

    def test_transient_error_still_retried(self):
        factory, calls = self.make_counting_mapper(RuntimeError("flaky"))
        with pytest.raises(TaskFailedError):
            SerialEngine(max_attempts=3).run(self.one_split_job(factory))
        assert len(calls) == 3  # full budget spent

    def test_custom_policy_overrides_default(self):
        factory, calls = self.make_counting_mapper(
            ValidationError("transient here")
        )
        engine = SerialEngine(
            retry=RetryPolicy(max_attempts=2, non_retryable=())
        )
        with pytest.raises(TaskFailedError):
            engine.run(self.one_split_job(factory))
        assert len(calls) == 2  # everything retryable under this policy

    def test_engine_exposes_policy_budget(self):
        engine = SerialEngine(retry=RetryPolicy(max_attempts=5))
        assert engine.max_attempts == 5


class TestThreadPoolRetries:
    def test_retry_recovers(self):
        engine = ThreadPoolEngine(max_workers=3, max_attempts=2)
        result = engine.run(flaky_job(FlakyOnce()))
        values = sorted(v for _, v in result.all_pairs())
        assert values == list(range(12))

    def test_algorithm_completes_on_flaky_engine(self, oracle, rng):
        """An MR skyline survives injected single failures."""
        from repro import skyline

        data = rng.random((200, 3))
        result = skyline(
            data,
            algorithm="mr-gpmrs",
            engine=SerialEngine(max_attempts=4),
        )
        assert set(result.indices.tolist()) == oracle(data)
