"""End-to-end serving observability: reports, traces, SLOs, the fleet.

The integration tier over ``repro.obs.serve_trace`` / ``repro.obs.slo``
/ ``build_serve_run_report``: attaching the full observer stack to a
replay must not change any virtual outcome, the serve run report must
validate and be **byte-identical** between the plain frontend and the
sharded frontend at shards=1 (the parity configuration), and a fleet
run must produce a schema-valid multi-process trace with worker spans
stitched by request id — all deterministic across repeated runs.
"""

import pytest

from repro.obs import (
    EventBus,
    MetricsCollector,
    ServeTracer,
    SLOMonitor,
    build_serve_run_report,
    canonical_json,
    chrome_trace,
    default_objectives,
    default_window_s,
    validate_chrome_trace,
    validate_report,
)
from repro.serve.workloads import (
    generate_ops,
    resolve_workload,
    serve_stream,
)

WORKLOAD = resolve_workload("flash-crowd", scale=0.5)


def _observed_replay(stream, **serve_kw):
    """One replay with the full observer stack attached."""
    bus = EventBus()
    collector = bus.subscribe(MetricsCollector())
    monitor = bus.subscribe(
        SLOMonitor(
            default_objectives(stream.workload),
            window_s=default_window_s(stream.workload),
        )
    )
    tracer = ServeTracer()
    artifacts = {}
    headline, frontend = serve_stream(
        stream, bus=bus, tracer=tracer, artifacts=artifacts, **serve_kw
    )
    monitor.finalize()
    monitor.ingest_spans(tracer.serve_spans())
    monitor.ingest_spans(tracer.fleet_spans())
    report = build_serve_run_report(
        stream,
        headline,
        frontend,
        skyline=artifacts["final_skyline"],
        monitor=monitor,
        collector=collector,
        config={"workload": stream.workload.name, "seed": stream.seed},
    )
    return report, tracer


class TestServeRunReport:
    @pytest.fixture(scope="class")
    def twin_reports(self):
        plain, _ = _observed_replay(generate_ops(WORKLOAD, seed=0))
        sharded, _ = _observed_replay(
            generate_ops(WORKLOAD, seed=0), shards=1, batch_window_s=0.0
        )
        return plain, sharded

    def test_report_validates(self, twin_reports):
        plain, sharded = twin_reports
        assert validate_report(plain) == []
        assert validate_report(sharded) == []

    def test_shards1_parity_is_byte_identical(self, twin_reports):
        plain, sharded = twin_reports
        assert canonical_json(plain) == canonical_json(sharded)

    def test_report_is_deterministic_across_runs(self):
        first, _ = _observed_replay(generate_ops(WORKLOAD, seed=3))
        second, _ = _observed_replay(generate_ops(WORKLOAD, seed=3))
        assert canonical_json(first) == canonical_json(second)

    def test_slo_section_has_burn_and_recorder(self, twin_reports):
        plain, _ = twin_reports
        slo = plain["slo"]
        assert {o["name"] for o in slo["objectives"]} == {
            "latency",
            "availability",
        }
        assert slo["requests"]["served"] > 0
        assert slo["flight_recorder"]["capacity"] > 0

    def test_counters_are_allowlisted_request_level(self, twin_reports):
        plain, sharded = twin_reports
        for report in (plain, sharded):
            for name in report["counters"]:
                assert name.startswith("serve.")
                # Shard-internal bookkeeping must never leak in — it
                # legitimately differs between the parity twins.
                assert not name.startswith("serve.shard.")


class TestObserverPurity:
    def test_attached_stack_changes_no_virtual_outcome(self):
        stream = generate_ops(WORKLOAD, seed=1)
        bare, _ = serve_stream(generate_ops(WORKLOAD, seed=1))
        observed, _ = _observed_replay(stream)
        assert observed["workload"] == bare


class TestFleetTracing:
    # Seed 3: the fitted shard plan genuinely fans out to two groups
    # at this scale (fan-out is data-dependent; other seeds can
    # collapse to one covering group).
    @pytest.fixture(scope="class")
    def fleet_run(self):
        return _observed_replay(
            generate_ops(WORKLOAD, seed=3), shards=2, fleet=True
        )

    def test_worker_spans_are_stitched_by_request_id(self, fleet_run):
        report, tracer = fleet_run
        workers = {s.track for s in tracer.fleet_spans()}
        assert workers == {"worker-0", "worker-1"}
        serve_ids = {
            s.args["request_id"]
            for s in tracer.serve_spans()
            if "request_id" in s.args
        }
        fleet_ids = {
            s.args["request_id"]
            for s in tracer.fleet_spans()
            if "request_id" in s.args
        }
        assert fleet_ids and fleet_ids <= serve_ids

    def test_trace_exports_two_processes_and_validates(self, fleet_run):
        _, tracer = fleet_run
        clocks = tracer.clocks()
        assert set(clocks) == {"serve", "fleet"}
        assert validate_chrome_trace(chrome_trace(clocks)) == []

    def test_fleet_results_match_inprocess_sharding(self, fleet_run):
        report, _ = fleet_run
        sharded, _ = _observed_replay(
            generate_ops(WORKLOAD, seed=3), shards=2
        )
        assert report["workload"] == sharded["workload"]
        assert report["skyline"] == sharded["skyline"]

    def test_fleet_trace_is_deterministic(self, fleet_run):
        _, tracer = fleet_run
        _, again = _observed_replay(
            generate_ops(WORKLOAD, seed=3), shards=2, fleet=True
        )
        assert tracer.serve_spans() == again.serve_spans()
        assert tracer.fleet_spans() == again.fleet_spans()

    def test_slo_digests_cover_every_worker(self, fleet_run):
        report, _ = fleet_run
        digests = report["slo"]["shards"]
        assert {"worker-0", "worker-1"} <= set(digests)
        assert all(d["busy_s"] >= 0.0 for d in digests.values())
