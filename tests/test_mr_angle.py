"""MR-Angle baseline (Chen et al. / Vlachou et al. angular
partitioning)."""

import numpy as np
import pytest

from repro.algorithms.mr_angle import (
    MRAngle,
    angular_partition_ids,
    hyperspherical_angles,
    sectors_for_target,
)
from repro.data.generators import generate
from repro.errors import ValidationError


class TestAngles:
    def test_range(self, rng):
        values = rng.random((200, 4))
        angles = hyperspherical_angles(values, np.zeros(4))
        assert angles.shape == (200, 3)
        assert (angles >= 0).all() and (angles <= np.pi / 2 + 1e-9).all()

    def test_axis_points(self):
        # A point on the first axis has phi_1 ~ 0; on the last axis
        # phi_1 ~ pi/2.
        angles = hyperspherical_angles(
            np.array([[1.0, 0.0], [0.0, 1.0]]), np.zeros(2)
        )
        assert angles[0, 0] < 0.01
        assert angles[1, 0] > np.pi / 2 - 0.01

    def test_one_dimension_has_no_angles(self):
        angles = hyperspherical_angles(np.ones((5, 1)), np.zeros(1))
        assert angles.shape == (5, 0)

    def test_origin_does_not_crash(self):
        angles = hyperspherical_angles(np.zeros((1, 3)), np.zeros(3))
        assert np.isfinite(angles).all()

    def test_scale_invariance(self, rng):
        """Angles depend on direction, not magnitude."""
        v = rng.random((50, 3)) + 0.1
        a1 = hyperspherical_angles(v, np.zeros(3))
        a2 = hyperspherical_angles(v * 7.0, np.zeros(3))
        assert np.allclose(a1, a2, atol=1e-6)


class TestPartitionIds:
    def test_in_range(self, rng):
        ids = angular_partition_ids(rng.random((300, 3)), np.zeros(3), 4)
        assert ids.min() >= 0 and ids.max() < 16

    def test_single_sector(self, rng):
        ids = angular_partition_ids(rng.random((50, 3)), np.zeros(3), 1)
        assert (ids == 0).all()

    def test_1d_single_partition(self, rng):
        ids = angular_partition_ids(rng.random((50, 1)), np.zeros(1), 5)
        assert (ids == 0).all()

    def test_validates_sectors(self, rng):
        with pytest.raises(ValidationError):
            angular_partition_ids(rng.random((5, 2)), np.zeros(2), 0)


class TestSectorsForTarget:
    def test_power_root(self):
        assert sectors_for_target(16, 3) == 4  # 4^2 = 16
        assert sectors_for_target(27, 4) == 3

    def test_2d(self):
        assert sectors_for_target(8, 2) == 8

    def test_1d(self):
        assert sectors_for_target(100, 1) == 1

    def test_validates(self):
        with pytest.raises(ValidationError):
            sectors_for_target(0, 3)


class TestMRAngle:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_matches_oracle(self, oracle, distribution, d):
        data = generate(distribution, 250, d, seed=41)
        result = MRAngle().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_partition_target_respected(self, rng):
        data = rng.random((300, 3))
        result = MRAngle(num_partitions=9).compute(data)
        assert result.artifacts["sectors"] == 3

    def test_two_jobs_single_final_reducer(self, rng):
        result = MRAngle().compute(rng.random((100, 3)))
        names = [j.job_name for j in result.stats.jobs]
        assert names == ["mr-angle-local", "mr-angle-merge"]
        assert result.stats.jobs[1].num_reduce_tasks == 1

    def test_empty(self):
        assert len(MRAngle().compute(np.empty((0, 2)))) == 0

    def test_1d_data(self, oracle, rng):
        data = rng.random((100, 1))
        result = MRAngle().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_validates(self):
        with pytest.raises(ValidationError):
            MRAngle(num_partitions=0)
