"""Synthetic data generators (Börzsönyi et al. shapes)."""

import numpy as np
import pytest

from repro.core.sfs import sfs_skyline_indices
from repro.data.generators import (
    DISTRIBUTIONS,
    anticorrelated,
    clustered,
    correlated,
    generate,
    independent,
)
from repro.errors import ValidationError


class TestBasics:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_shape_and_range(self, name):
        data = generate(name, 500, 4, seed=1)
        assert data.shape == (500, 4)
        assert (data >= 0.0).all() and (data <= 1.0).all()

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_deterministic_under_seed(self, name):
        a = generate(name, 100, 3, seed=9)
        b = generate(name, 100, 3, seed=9)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_different_seeds_differ(self, name):
        a = generate(name, 100, 3, seed=1)
        b = generate(name, 100, 3, seed=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_zero_cardinality(self, name):
        assert generate(name, 0, 3).shape == (0, 3)

    def test_unknown_distribution(self):
        with pytest.raises(ValidationError):
            generate("zipfian", 10, 2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            independent(-1, 2)
        with pytest.raises(ValidationError):
            independent(10, 0)
        with pytest.raises(ValidationError):
            clustered(10, 2, num_clusters=0)


class TestShapes:
    """The property that drives every figure in the paper: skyline
    fraction ordering correlated < independent < anticorrelated."""

    def skyline_fraction(self, data):
        return sfs_skyline_indices(data).shape[0] / data.shape[0]

    def test_fraction_ordering(self):
        n, d = 2000, 4
        corr = self.skyline_fraction(correlated(n, d, seed=5))
        ind = self.skyline_fraction(independent(n, d, seed=5))
        anti = self.skyline_fraction(anticorrelated(n, d, seed=5))
        assert corr < ind < anti

    def test_anticorrelated_fraction_grows_with_d(self):
        fractions = [
            self.skyline_fraction(anticorrelated(1500, d, seed=3))
            for d in (2, 4, 6)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_correlated_dimensions_positively_correlated(self):
        data = correlated(3000, 2, seed=7)
        r = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert r > 0.5

    def test_anticorrelated_dimensions_negatively_correlated(self):
        data = anticorrelated(3000, 2, seed=7)
        r = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert r < -0.5

    def test_independent_dimensions_uncorrelated(self):
        data = independent(3000, 2, seed=7)
        r = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert abs(r) < 0.1

    def test_clustered_is_lumpy(self):
        """Clustered data occupies far fewer grid cells than uniform."""
        from repro.grid.bitstring import Bitstring
        from repro.grid.grid import Grid

        g = Grid.unit(8, 2)
        uniform_cells = Bitstring.from_data(
            g, independent(2000, 2, seed=1)
        ).count()
        clustered_cells = Bitstring.from_data(
            g, clustered(2000, 2, seed=1, num_clusters=3)
        ).count()
        assert clustered_cells < uniform_cells / 2


class TestGeneratorAccceptsGenerator:
    def test_rng_instance_reused(self):
        rng = np.random.default_rng(0)
        a = independent(10, 2, seed=rng)
        b = independent(10, 2, seed=rng)
        assert not np.array_equal(a, b)  # stream advances
