"""Cross-engine and cross-path equivalence.

The execution engine is infrastructure, never semantics: every engine
(serial, thread pool, process pool, BSP supersteps) and both input
paths (record-at-a-time vs columnar block) must produce byte-identical
skylines, identical counters, and identical shuffle-byte totals for
every algorithm. This is the invariant that makes the cost model and
the paper's counter figures engine-independent.
"""

import numpy as np
import pytest

from repro import skyline
from repro.bsp import BSPEngine
from repro.data.generators import generate
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine

MR_ALGORITHMS = [
    "mr-gpsrs",
    "mr-gpmrs",
    "mr-bnl",
    "mr-sfs",
    "mr-angle",
    "mr-bitmap",
    "mr-hybrid",
    "sky-mr",
]

DISTRIBUTIONS = ["independent", "correlated", "anticorrelated"]


def _fingerprint(result):
    """Everything an engine could plausibly perturb."""
    counters = [job.counters.as_dict() for job in result.stats.jobs]
    shuffle = sum(job.shuffle_bytes for job in result.stats.jobs)
    return (
        result.indices.tolist(),
        result.values.tolist(),
        counters,
        shuffle,
    )


def _run(algorithm, data, engine):
    return _fingerprint(skyline(data, algorithm=algorithm, engine=engine))


def _dataset(algorithm, distribution, n, d, seed):
    """mr-bitmap only handles discrete domains (paper Section 2.2)."""
    if algorithm == "mr-bitmap":
        rng = np.random.default_rng(seed)
        return rng.integers(0, 8, (n, d)).astype(float)
    return generate(distribution, n, d, seed=seed)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_block_path_matches_record_path(algorithm, distribution):
    """The columnar fast path is invisible: same skyline, same
    counters, same shuffle bytes as record-at-a-time."""
    data = _dataset(algorithm, distribution, 220, 3, seed=42)
    record = _run(algorithm, data, SerialEngine(block_path=False))
    block = _run(algorithm, data, SerialEngine())
    assert record == block


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_thread_pool_matches_serial(algorithm):
    data = _dataset(algorithm, "anticorrelated", 220, 3, seed=43)
    serial = _run(algorithm, data, SerialEngine())
    threads = _run(algorithm, data, ThreadPoolEngine(max_workers=4))
    assert serial == threads


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_bsp_matches_serial(algorithm):
    """The superstep engine changes the execution model, not one byte
    of the result — and its cost report stays engine-local."""
    data = _dataset(algorithm, "anticorrelated", 220, 3, seed=43)
    serial = _run(algorithm, data, SerialEngine())
    bsp_engine = BSPEngine()
    bsp = _run(algorithm, data, bsp_engine)
    assert serial == bsp
    assert bsp_engine.cost.rounds > 0  # it did account the run


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_process_pool_matches_serial(algorithm):
    data = _dataset(algorithm, "anticorrelated", 180, 3, seed=44)
    serial = _run(algorithm, data, SerialEngine())
    processes = _run(algorithm, data, ProcessPoolEngine(max_workers=2))
    assert serial == processes


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_all_engines_agree_bytewise(distribution):
    """One workload through all engines at once (headline algorithm)."""
    data = generate(distribution, 260, 4, seed=45)
    prints = [
        _run("mr-gpmrs", data, engine)
        for engine in (
            SerialEngine(block_path=False),
            SerialEngine(),
            ThreadPoolEngine(max_workers=3),
            ProcessPoolEngine(max_workers=2),
            BSPEngine(),
            BSPEngine(block_path=False),
        )
    ]
    assert all(p == prints[0] for p in prints[1:])


def test_record_and_block_paths_agree_on_tiny_inputs():
    """Empty-ish splits: more mappers than rows."""
    for n in (1, 2, 5):
        data = generate("independent", n, 3, seed=46)
        record = _run("mr-gpmrs", data, SerialEngine(block_path=False))
        block = _run("mr-gpmrs", data, SerialEngine())
        assert record == block, n


def test_engine_reprs_show_configuration():
    assert "block_path=False" in repr(SerialEngine(block_path=False))
    assert "max_workers=7" in repr(ThreadPoolEngine(max_workers=7))
    assert "max_workers=3" in repr(ProcessPoolEngine(max_workers=3))
    assert repr(BSPEngine()).startswith("BSPEngine(")
