"""Counter facility tests."""

import pytest

from repro.errors import ValidationError
from repro.mapreduce.counters import Counters


class TestCounters:
    def test_inc_and_get(self):
        c = Counters()
        c.inc("a.b")
        c.inc("a.b", 4)
        assert c["a.b"] == 5
        assert c["missing"] == 0
        assert c.get("missing", 7) == 7

    def test_initial_values(self):
        c = Counters({"x": 3})
        assert c["x"] == 3

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Counters().inc("")

    def test_negative_amount_rejected(self):
        """Counters are documented monotonic; a negative inc is a bug
        in the caller, not a decrement facility."""
        c = Counters({"x": 5})
        with pytest.raises(ValidationError):
            c.inc("x", -1)
        assert c["x"] == 5  # unchanged after the rejected inc

    def test_zero_amount_allowed(self):
        c = Counters()
        c.inc("x", 0)
        assert c["x"] == 0

    def test_merge(self):
        a = Counters({"x": 1, "y": 2})
        b = Counters({"y": 3, "z": 4})
        a.merge(b)
        assert a.as_dict() == {"x": 1, "y": 5, "z": 4}

    def test_contains_len_iter(self):
        c = Counters({"b": 1, "a": 2})
        assert "a" in c and "q" not in c
        assert len(c) == 2
        assert list(c) == ["a", "b"]  # sorted

    def test_group_strips_prefix(self):
        c = Counters(
            {"skyline.compares": 5, "skyline.pruned": 2, "mr.records": 9}
        )
        assert c.group("skyline") == {"compares": 5, "pruned": 2}
        assert c.group("skyline.") == {"compares": 5, "pruned": 2}

    def test_as_dict_is_copy(self):
        c = Counters({"x": 1})
        d = c.as_dict()
        d["x"] = 99
        assert c["x"] == 1
