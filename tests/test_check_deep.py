"""Unit tests for the deep analyses behind REP008-REP011.

The fixture suite (``test_check_rules``) pins exact findings on the
known-bad programs; this file exercises the machinery underneath — the
alias-aware call graph, the guarded-by comment parser, and the corner
cases of each analysis that the fixtures keep simple (rebinds, loops,
interprocedural entry locksets, keyword-argument purity mapping,
cross-module programs).
"""

import ast
import textwrap

from repro.check.callgraph import build_call_graph, module_name_for
from repro.check.deep import parse_guard_comments
from repro.check.runner import check_paths, check_source


def deep(source, path="unit.py"):
    return [
        (v.line, v.rule_id)
        for v in check_source(textwrap.dedent(source), path, deep=True)
    ]


def graph_of(*named_sources):
    return build_call_graph(
        [(path, ast.parse(textwrap.dedent(src))) for path, src in named_sources]
    )


class TestCallGraph:
    SRC = """
        import helpers as h
        from helpers import scrub

        REGISTRY = []

        def local(x):
            return x

        def caller(x):
            alias = local
            alias(x)
            h.wipe(x)
            scrub(x)

        REGISTRY.append(local)

        class Box:
            def get(self):
                return self._load()

            def _load(self):
                return 1
    """
    HELPERS = """
        def wipe(x):
            x.clear()

        def scrub(x):
            x.clear()
    """

    def test_module_name_anchors_at_the_package_root(self):
        assert module_name_for("src/repro/core/shm.py") == "repro.core.shm"
        assert module_name_for("tests/checkdata/bad_rep008.py") == "bad_rep008"

    def test_resolves_aliases_imports_and_methods(self):
        graph = graph_of(("main.py", self.SRC), ("helpers.py", self.HELPERS))
        callees = {
            cs.callee.qualname for cs in graph.calls_from("main.caller")
        }
        # `alias = local; alias(x)` resolves through the local binding,
        # `h.wipe` through the import alias, `scrub` through the
        # from-import.
        assert callees == {"main.local", "helpers.wipe", "helpers.scrub"}
        method = {cs.callee.qualname for cs in graph.calls_from("main.Box.get")}
        assert method == {"main.Box._load"}

    def test_value_references_escape(self):
        graph = graph_of(("main.py", self.SRC), ("helpers.py", self.HELPERS))
        # REGISTRY.append(local) references the function as a value, so
        # its callers are no longer statically enumerable.
        assert "main.local" in graph.escaped
        assert "main.caller" not in graph.escaped


class TestGuardComments:
    def test_trailing_comment_designates_its_own_line(self):
        source = "items = []  # repro: guarded-by[_lock]\n"
        assert parse_guard_comments(source) == {1: "_lock"}

    def test_standalone_comment_designates_the_next_line(self):
        source = (
            "# repro: guarded-by[mu]\n"
            "table = {}\n"
        )
        assert parse_guard_comments(source) == {2: "mu"}

    def test_unannotated_source_has_no_guards(self):
        assert parse_guard_comments("x = 1\n") == {}


class TestResourceCorners:
    def test_rebinding_an_owed_resource_is_a_leak(self):
        assert deep(
            """
            def f():
                arena = SharedArena()
                arena = SharedArena()
                arena.unlink()
            """
        ) == [(3, "REP008")]

    def test_loop_body_leak_is_caught_releases_are_not(self):
        leak = """
            def f(n):
                for i in range(n):
                    arena = SharedArena()
                return n
            """
        ok = """
            def f(n):
                for i in range(n):
                    arena = SharedArena()
                    arena.unlink()
                return n
            """
        assert deep(leak) == [(4, "REP008")]
        assert deep(ok) == []

    def test_raise_paths_are_exempt(self):
        assert deep(
            """
            def f(cond):
                arena = SharedArena()
                if cond:
                    raise ValueError("mid-setup")
                arena.unlink()
            """
        ) == []

    def test_storing_on_self_transfers_ownership(self):
        assert deep(
            """
            class Holder:
                def __init__(self):
                    self.arena = SharedArena()
            """
        ) == []


class TestLockCorners:
    def test_private_helper_inherits_callers_locksets(self):
        assert deep(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0  # repro: guarded-by[_lock]

                def bump(self):
                    with self._lock:
                        self._bump()

                def _bump(self):
                    self.n += 1
            """
        ) == []

    def test_one_unlocked_caller_taints_the_helper(self):
        assert deep(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0  # repro: guarded-by[_lock]

                def bump(self):
                    with self._lock:
                        self._bump()

                def sneak(self):
                    self._bump()

                def _bump(self):
                    self.n += 1
            """
        ) == [(17, "REP009")]

    def test_module_level_lock_guards_module_globals(self):
        assert deep(
            """
            import threading

            MU = threading.Lock()
            TABLE = {}  # repro: guarded-by[MU]


            def locked(key):
                with MU:
                    return TABLE.get(key)


            def unlocked(key):
                return TABLE.get(key)
            """
        ) == [(14, "REP009")]


class TestPurityCorners:
    def test_keyword_arguments_map_to_parameters(self):
        assert deep(
            """
            from repro.mapreduce.api import Mapper


            def scrub(keep, rows):
                rows.clear()


            class M(Mapper):
                def map(self, key, value, ctx):
                    scrub(keep=2, rows=value)
                    return [(key, value)]
            """
        ) == [(11, "REP011")]

    def test_mutating_a_copy_is_pure(self):
        assert deep(
            """
            from repro.mapreduce.api import Mapper


            def tidy(rows):
                out = list(rows)
                out.sort()
                return out


            class M(Mapper):
                def map(self, key, value, ctx):
                    return [(key, tidy(value))]
            """
        ) == []


class TestWholeProgram:
    def test_cross_module_purity_finding(self, tmp_path):
        (tmp_path / "helpers.py").write_text(
            textwrap.dedent(
                """
                CACHE = {}


                def remember(key):
                    CACHE[key] = True
                """
            )
        )
        (tmp_path / "tasks.py").write_text(
            textwrap.dedent(
                """
                from helpers import remember
                from repro.mapreduce.api import Mapper


                class M(Mapper):
                    def map(self, key, value, ctx):
                        remember(key)
                        return [(key, value)]
                """
            )
        )
        violations = check_paths([str(tmp_path)], deep=True)
        got = [(v.path.rsplit("/", 1)[-1], v.line, v.rule_id) for v in violations]
        assert got == [("tasks.py", 8, "REP011")]

    def test_deep_off_skips_the_dataflow_rules(self, tmp_path):
        (tmp_path / "leaky.py").write_text(
            "def f():\n    arena = SharedArena()\n"
        )
        assert check_paths([str(tmp_path)]) == []
        assert [
            (v.line, v.rule_id)
            for v in check_paths([str(tmp_path)], deep=True)
        ] == [(2, "REP008")]
