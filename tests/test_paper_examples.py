"""End-to-end checks of every worked example in the paper's text."""

import numpy as np

from repro.grid.bitstring import Bitstring
from repro.grid.cost import kappa, rho_dom, rho_rem
from repro.grid.grid import Grid
from repro.grid.groups import generate_independent_groups
from repro.grid.regions import anti_dominating_region, dominating_region


def grid33():
    return Grid.unit(3, 2)


class TestSection31Figure2:
    """'For partition p4, its dominating region is {p8} and its
    anti-dominating region is {p0, p1, p3}.'"""

    def test_dr(self):
        assert list(dominating_region(grid33(), 4)) == [8]

    def test_adr(self):
        assert list(anti_dominating_region(grid33(), 4)) == [0, 1, 3]


class TestSection32Bitstring:
    """'non-empty partitions are marked with crosses ... the bitstring
    is 011110100' (column-major order)."""

    def test_bitstring_value(self):
        g = grid33()
        points = np.vstack(
            [g.min_corner(cell) + g.widths / 2 for cell in (1, 2, 3, 4, 6)]
        )
        assert Bitstring.from_data(g, points).to01() == "011110100"


class TestSection52Figure6:
    """'the independent group from p6 and p6.ADR = {p3} is
    IG1 = {p3, p6}. Next ... IG2 = {p1, p3, p4} ... finally
    IG3 = {p1, p2}.'"""

    def test_group_walkthrough(self):
        g = grid33()
        bs = Bitstring.from01(g, "011110100")
        groups = generate_independent_groups(g, bs)
        assert [set(grp.members) for grp in groups] == [
            {3, 6},
            {1, 3, 4},
            {1, 2},
        ]

    def test_replication_note(self):
        """'It may be necessary to replicate some partitions, e.g.,
        partitions p1 and p3 in Figure 6.'"""
        g = grid33()
        groups = generate_independent_groups(
            g, Bitstring.from01(g, "011110100")
        )
        membership = {}
        for grp in groups:
            for p in grp.members:
                membership.setdefault(p, 0)
                membership[p] += 1
        assert membership[1] == 2 and membership[3] == 2

    def test_no_group_is_subset_of_another(self):
        """'However, independent groups cannot be subsets of each
        other.'"""
        g = grid33()
        groups = generate_independent_groups(
            g, Bitstring.from01(g, "011110100")
        )
        sets = [set(grp.members) for grp in groups]
        for i, a in enumerate(sets):
            for j, b in enumerate(sets):
                if i != j:
                    assert not a <= b


class TestSection6CostExamples:
    def test_remaining_partitions_example(self):
        """'the number of remaining partitions after pruning for the
        3x3 grid is 3^2 - 2^2 = 5.'"""
        assert rho_rem(3, 2) == 5

    def test_p2_comparisons_example(self):
        """'partition p2 has coordinates (1, 3) in the grid. The number
        of partition-wise comparisons for p2 is thus 1*3 - 1 = 2.'"""
        assert rho_dom((1, 3)) == 2

    def test_surface_enumeration_example(self):
        """'In this 3x3 2-dimensional grid, there are 2x2 = 4
        1-dimensional surfaces' — each with 3 partitions; pruning
        leaves d=2 intact surfaces overlapping in one cell, i.e. 5
        remaining partitions — consistent with rho_rem."""
        g = grid33()
        surf1 = {g.index_of((c, 0)) for c in range(3)}
        surf2 = {g.index_of((0, c)) for c in range(3)}
        assert len(surf1 | surf2) == rho_rem(3, 2)

    def test_figure6_pruning_statement(self):
        """'If each partition was non-empty, then partitions p4, p5,
        p7, and p8 would be dominated and pruned by using the
        bitstring.'"""
        g = grid33()
        full = Bitstring(g, np.ones(9, dtype=bool))
        pruned = full.prune_dominated()
        assert set(pruned.set_indices().tolist()) == {0, 1, 2, 3, 6}
