"""SkylineIndex delta maintenance: the correctness oracle suite.

The load-bearing property: after ANY seeded stream of inserts and
deletes, the incrementally maintained skyline is byte-identical to a
from-scratch batch recompute of the surviving points — per-delta
against the brute-force O(n^2) oracle, and at every staleness-budget
boundary against the full MR-GPMRS pipeline across engines (including
the contract-checking engine).
"""

import numpy as np
import pytest

from repro import skyline
from repro.check.contracts import ContractCheckingEngine
from repro.core.dominance import skyline_mask_bruteforce
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.grid.bitstring import Bitstring
from repro.mapreduce.counters import (
    SERVE_BATCH_REFRESHES,
    SERVE_DELETES,
    SERVE_DELTA_REPAIRS,
    SERVE_INSERTS,
)
from repro.obs import EventBus, EventLog, validate_events
from repro.serve import SkylineIndex

DISTRIBUTIONS = ["independent", "anticorrelated", "clustered"]

ENGINES = {
    "serial": lambda: None,  # SkylineIndex default engine
    "contract": ContractCheckingEngine,
}


def oracle_ids(index: SkylineIndex) -> np.ndarray:
    """Brute-force skyline ids of the index's current points."""
    snap = index.snapshot()
    if len(snap) == 0:
        return np.empty(0, dtype=np.int64)
    return snap.ids[skyline_mask_bruteforce(snap.values)]


def drive(index: SkylineIndex, rng, steps: int, d: int, check=None):
    """Apply a seeded insert/delete stream, calling ``check`` per delta."""
    live = sorted(index.snapshot().ids.tolist())
    next_id = (max(live) + 1) if live else 0
    for _ in range(steps):
        if rng.random() < 0.55 or len(live) < 2:
            index.insert(rng.random(d), next_id)
            live.append(next_id)
            next_id += 1
        else:
            victim = live.pop(int(rng.integers(0, len(live))))
            index.delete(victim)
        if check is not None:
            check(index)


class TestOracleEquivalence:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_every_delta_matches_bruteforce(self, distribution):
        data = generate(distribution, 120, 2, seed=3)
        index = SkylineIndex(data, staleness_budget=1000)

        def check(idx):
            assert np.array_equal(idx.skyline_ids(), oracle_ids(idx))

        check(index)
        drive(index, np.random.default_rng(7), 150, 2, check=check)
        assert index.refreshes == 1  # only the constructor's

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_staleness_boundaries_match_mr_gpmrs(
        self, distribution, engine_name
    ):
        """At every staleness-budget boundary the index equals a full
        MR-GPMRS recompute, byte for byte (ids AND values)."""
        engine = ENGINES[engine_name]()
        data = generate(distribution, 100, 3, seed=11)
        index = SkylineIndex(
            data, staleness_budget=16, refresh_algorithm="mr-gpmrs",
            engine=engine,
        )
        boundaries = []

        def check(idx):
            if idx.deltas_since_refresh == 0:  # refresh just fired
                snap = idx.snapshot()
                result = skyline(
                    snap.values, algorithm="mr-gpmrs", engine=engine
                )
                assert np.array_equal(
                    idx.skyline_ids(), snap.ids[result.indices]
                )
                assert (
                    idx.skyline().values.tobytes()
                    == result.values.tobytes()
                )
                boundaries.append(idx.epoch)

        drive(index, np.random.default_rng(23), 48, 3, check=check)
        assert len(boundaries) == 3  # 48 deltas / budget 16

    def test_delete_heavy_stream_stays_exact(self):
        data = generate("anticorrelated", 150, 2, seed=5)
        index = SkylineIndex(data, staleness_budget=1000)
        rng = np.random.default_rng(9)
        live = list(range(150))
        # Delete down to a handful, checking at every step — exercises
        # the repair path on skyline members over and over.
        while len(live) > 3:
            victim = live.pop(int(rng.integers(0, len(live))))
            index.delete(victim)
            assert np.array_equal(index.skyline_ids(), oracle_ids(index))

    def test_refresh_is_content_neutral(self):
        data = generate("independent", 80, 2, seed=2)
        index = SkylineIndex(data, staleness_budget=1000)
        drive(index, np.random.default_rng(4), 20, 2)
        before = index.skyline_ids()
        epoch = index.epoch
        index.batch_refresh()
        assert np.array_equal(index.skyline_ids(), before)
        assert index.epoch == epoch  # refresh never invalidates caches
        assert index.deltas_since_refresh == 0


class TestBitstringInvariants:
    """Single-cell-flip invariants of the live occupancy bitstring."""

    def test_bitstring_tracks_occupancy_through_deltas(self):
        data = generate("clustered", 90, 2, seed=13)
        index = SkylineIndex(data, staleness_budget=10_000, ppd=4)

        def check(idx):
            snap = idx.snapshot()
            fresh = Bitstring.from_data(idx.grid, snap.values)
            assert idx.bitstring == fresh
            assert idx.pruned_bitstring == fresh.prune_dominated()

        check(index)
        drive(index, np.random.default_rng(21), 120, 2, check=check)

    def test_insert_into_empty_cell_flips_exactly_one_bit(self):
        index = SkylineIndex(dimensionality=2, ppd=4, staleness_budget=10_000)
        assert index.bitstring.count() == 0
        index.insert([0.9, 0.9], 0)
        assert index.bitstring.count() == 1
        cell = index.grid.cell_index([0.9, 0.9])
        assert index.bitstring[cell]
        # A second point in the same cell flips nothing.
        index.insert([0.95, 0.95], 1)
        assert index.bitstring.count() == 1
        # Deleting one of them keeps the bit; deleting both clears it.
        index.delete(0)
        assert index.bitstring[cell]
        index.delete(1)
        assert index.bitstring.count() == 0

    def test_flip_union_equals_from_scratch(self):
        """OR of per-cell flips == Bitstring.from_data (Equation 1)."""
        index = SkylineIndex(dimensionality=2, ppd=4, staleness_budget=10_000)
        rng = np.random.default_rng(31)
        points = rng.random((40, 2))
        singles = []
        for position, point in enumerate(points):
            index.insert(point, position)
            singles.append(Bitstring.from_data(index.grid, point.reshape(1, 2)))
        union = Bitstring.union(index.grid, singles)
        assert index.bitstring == union
        assert union == Bitstring.from_data(index.grid, points)

    def test_pruned_bits_never_hold_skyline_members(self):
        data = generate("independent", 200, 2, seed=17)
        index = SkylineIndex(data, staleness_budget=10_000, ppd=5)
        drive(index, np.random.default_rng(19), 60, 2)
        sky = index.skyline()
        cells = index.grid.cell_indices(sky.values)
        assert all(index.pruned_bitstring[int(c)] for c in cells)


class TestEdgesAndAccounting:
    def test_duplicate_id_and_unknown_id_raise(self):
        index = SkylineIndex(dimensionality=2)
        index.insert([0.5, 0.5], 7)
        with pytest.raises(ValidationError):
            index.insert([0.1, 0.1], 7)
        with pytest.raises(ValidationError):
            index.delete(99)

    def test_duplicate_points_both_stay_in_skyline(self):
        index = SkylineIndex(dimensionality=2, staleness_budget=10_000)
        index.insert([0.2, 0.2], 0)
        index.insert([0.2, 0.2], 1)
        assert index.skyline_ids().tolist() == [0, 1]
        index.delete(0)
        assert index.skyline_ids().tolist() == [1]

    def test_empty_to_full_to_empty(self):
        index = SkylineIndex(dimensionality=2, staleness_budget=10_000)
        assert len(index.skyline()) == 0
        index.insert([0.3, 0.7], 0)
        index.insert([0.7, 0.3], 1)
        index.insert([0.8, 0.8], 2)  # dominated
        assert index.skyline_ids().tolist() == [0, 1]
        for pid in (0, 1, 2):
            index.delete(pid)
        assert len(index) == 0
        assert len(index.skyline()) == 0

    def test_counters_and_events(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        data = generate("independent", 60, 2, seed=29)
        index = SkylineIndex(data, staleness_budget=8, bus=bus)
        drive(index, np.random.default_rng(37), 24, 2)
        counters = index.counters
        assert counters[SERVE_INSERTS] + counters[SERVE_DELETES] == 24
        assert counters[SERVE_BATCH_REFRESHES] == index.refreshes
        # Deleting a skyline member takes the bounded-repair path.
        member = int(index.skyline_ids()[0])
        index.delete(member)
        assert counters[SERVE_DELTA_REPAIRS] >= 1
        deltas = log.of_kind("serve_delta_applied")
        assert len(deltas) == 25
        assert log.of_kind("serve_batch_refresh")
        assert validate_events(log.events) == []

    def test_query_region_filters_the_skyline(self):
        index = SkylineIndex(dimensionality=2, staleness_budget=10_000)
        index.insert([0.1, 0.9], 0)
        index.insert([0.9, 0.1], 1)
        region = ((0.0, 0.5), (0.5, 1.0))
        assert index.query(region).ids.tolist() == [0]
        assert index.query().ids.tolist() == [0, 1]
        with pytest.raises(ValidationError):
            index.query(((0.0,), (1.0,)))

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            SkylineIndex()  # needs data, bounds, or dimensionality
        with pytest.raises(ValidationError):
            SkylineIndex(dimensionality=2, staleness_budget=0)
        with pytest.raises(ValidationError):
            SkylineIndex(dimensionality=2, refresh_algorithm="mr-bnl")
