"""Labelled datasets, CSV/NPY persistence, demo data."""

import numpy as np
import pytest

from repro.core.sfs import sfs_skyline_indices
from repro.data.datasets import (
    LabelledDataset,
    hotels,
    load_csv,
    load_npy,
    players,
    save_csv,
    save_npy,
)
from repro.errors import DataError


class TestLabelledDataset:
    def test_basic(self):
        ds = LabelledDataset(
            values=[[1.0, 2.0]], columns=("a", "b"), labels=("row1",)
        )
        assert len(ds) == 1
        assert ds.row_label(0) == "row1"

    def test_default_labels(self):
        ds = LabelledDataset(values=[[1.0, 2.0]], columns=("a", "b"))
        assert ds.row_label(0) == "row-0"

    def test_column_count_checked(self):
        with pytest.raises(DataError):
            LabelledDataset(values=[[1.0, 2.0]], columns=("a",))

    def test_label_count_checked(self):
        with pytest.raises(DataError):
            LabelledDataset(
                values=[[1.0, 2.0]], columns=("a", "b"), labels=("x", "y")
            )


class TestCSVRoundtrip:
    def test_roundtrip_with_labels(self, tmp_path):
        ds = hotels(cardinality=50)
        path = str(tmp_path / "hotels.csv")
        save_csv(path, ds)
        back = load_csv(path, has_labels=True)
        assert back.columns == ds.columns
        assert back.labels == ds.labels
        assert np.allclose(back.values, ds.values)

    def test_roundtrip_without_labels(self, tmp_path):
        ds = LabelledDataset(values=[[1.5, 2.5]], columns=("x", "y"))
        path = str(tmp_path / "plain.csv")
        save_csv(path, ds)
        back = load_csv(path)
        assert np.allclose(back.values, ds.values)
        assert back.columns == ("x", "y")

    def test_missing_file(self):
        with pytest.raises(DataError):
            load_csv("/nonexistent/nowhere.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(str(path))


class TestNPYRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        data = rng.random((20, 3))
        path = str(tmp_path / "data.npy")
        save_npy(path, data)
        assert np.array_equal(load_npy(path), data)

    def test_missing_file(self):
        with pytest.raises(DataError):
            load_npy("/nonexistent/nowhere.npy")


class TestDemoDatasets:
    def test_hotels_shape(self):
        ds = hotels(cardinality=500)
        assert ds.values.shape == (500, 3)
        assert ds.columns == ("price", "distance_km", "noise_db")
        assert (ds.values[:, 0] > 0).all()

    def test_hotels_deterministic(self):
        assert np.array_equal(hotels(100).values, hotels(100).values)

    def test_hotels_price_distance_tradeoff(self):
        ds = hotels(cardinality=3000)
        r = np.corrcoef(ds.values[:, 0], ds.values[:, 1])[0, 1]
        assert r < -0.2  # closer -> pricier

    def test_hotels_have_interesting_skyline(self):
        ds = hotels(cardinality=1000)
        sky = sfs_skyline_indices(ds.values)
        assert 2 <= sky.shape[0] <= 200

    def test_players_shape(self):
        ds = players(cardinality=200)
        assert ds.values.shape == (200, 4)
        assert (ds.values >= 0).all()

    def test_players_deterministic(self):
        assert np.array_equal(players(50).values, players(50).values)
