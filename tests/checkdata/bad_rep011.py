"""Known-bad REP011 fixture: task purity violated through helper calls.

Analysis data only — parsed by the checker, never imported or run.
"""

from repro.mapreduce.api import Mapper, Reducer

_SEEN = {}


def remember(key):
    _SEEN[key] = True


def scrub(rows):
    rows.clear()


def relay(block):
    scrub(block)


def tidy(rows):
    return sorted(rows)


class CountingMapper(Mapper):
    def map(self, key, value, ctx):
        remember(key)  # <- REP011
        return [(key, value)]


class ScrubReducer(Reducer):
    def reduce(self, key, values, ctx):
        cleanup = scrub
        cleanup(values)  # <- REP011
        relay(values)  # <- REP011
        ordered = tidy(values)
        return [(key, ordered)]
