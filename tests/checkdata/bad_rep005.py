"""Known-bad fixture: REP005 untyped event emissions."""

from repro.obs.events import JobStart


def publish(bus, job):
    bus.emit({"type": "job_start", "job": job.name})  # <- REP005
    bus.emit(FrobnicationDone(job=job.name))  # noqa: F821  # <- REP005
    bus.emit(JobStart(job=job.name, pipeline="p"))  # typed: fine
