"""Known-bad REP008 fixture: resource leaks on non-exceptional paths.

Analysis data only — parsed by the checker, never imported or run.
"""

from repro.core.shm import SharedArena


def leaks_on_early_return(cond):
    arena = SharedArena()  # <- REP008
    if cond:
        return None
    return arena


def forgets_mutation_ctx(tracer, index, point):
    ctx = tracer.begin_mutation("insert")  # <- REP008
    index.insert(point)
    return index.epoch


def leaks_one_pipe_end(mp_context, registry):
    parent, child = mp_context.Pipe()  # <- REP008
    registry.append(parent)
    return registry


def releases_in_finally(compute):
    arena = SharedArena()
    try:
        return compute(arena)
    finally:
        arena.unlink()


def releases_on_every_branch(cond):
    arena = SharedArena()
    if cond:
        arena.unlink()
        return None
    out = arena.names
    arena.unlink()
    return out


def conditional_ctx_is_understood(tracer, work):
    ctx = tracer.begin_query(7) if tracer is not None else None
    result = work()
    if ctx is not None:
        tracer.commit_query(ctx)
    return result


def ownership_transfer_stops_tracking(mp_context, spawn):
    parent, child = mp_context.Pipe()
    worker = spawn(child)
    child.close()
    return parent, worker


def with_managed_is_never_tracked(job):
    with SharedArena() as arena:
        return job(arena)
