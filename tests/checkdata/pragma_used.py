"""Fixture: pragmas that legitimately suppress violations -> clean."""

import time


def wall():
    return time.time()  # repro: allow[REP001]


def wall_above():
    # repro: allow[REP001]
    return time.time()
