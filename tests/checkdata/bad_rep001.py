"""Known-bad fixture: REP001 wall-clock reads and unseeded randomness."""

import random
import time
from datetime import datetime

import numpy as np


def timestamp():
    return time.time()  # <- REP001


def today():
    return datetime.now()  # <- REP001


def pick(items):
    return random.choice(items)  # <- REP001


def noise():
    return np.random.rand(3)  # <- REP001


def fresh_rng():
    return random.Random()  # <- REP001


def fresh_generator():
    return np.random.default_rng()  # <- REP001
