"""Known-bad REP010 fixture: router messages the worker cannot dispatch.

Analysis data only — parsed by the checker, never imported or run.
"""


def shard_worker(conn, state):
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "stop":
            conn.send(("ok",))
            return
        elif op == "put":
            _, key, value = msg
            state[key] = value
            conn.send(("ok", key))
        elif op == "get":
            key = msg[1]
            conn.send(("ok", state.get(key)))
        else:
            conn.send(("err", "unknown op"))


class Router:
    def __init__(self, conns):
        self._conns = conns

    def _call(self, conn, msg):
        conn.send(msg)
        return conn.recv()

    def fetch(self, conn):
        return self._call(conn, ("fetch", 3))  # <- REP010

    def put_wrong_arity(self, conn):
        return self._call(conn, ("put", "key"))  # <- REP010

    def conforming_calls(self, conn):
        self._call(conn, ("put", "key", "value"))
        self._call(conn, ("get", "key"))
        conn.send(("stop",))
