"""Fixture: determinism-conscious code the checker must fully accept."""

import random
import time

from repro.mapreduce import counters as counter_names
from repro.obs.events import JobEnd


def seeded():
    return random.Random(7).random()


def probe():
    return time.perf_counter()


def ordered(points):
    cells = {p.cell for p in points}
    for cell in sorted(cells):
        yield cell


def consumed(cells):
    other = frozenset(range(3))
    return len(cells), max(other), (1 in cells), set(c + 1 for c in other)


class TidyMapper(Mapper):  # noqa: F821 -- never imported, parse-only
    def map(self, key, value, ctx):
        ctx.counters.inc(counter_names.TUPLE_COMPARES)
        ctx.emit(key, list(value))


def farewell(bus, job):
    bus.emit(JobEnd(job=job.name, pipeline="p"))


def guarded(fn):
    try:
        return fn()
    except (ValueError, OSError):
        return None
