"""Fixture: a stale pragma suppressing nothing -> REP007."""


def fine():
    # repro: allow[REP001]  <- REP007
    return 42
