"""Known-bad fixture: REP004 impure mapper/reducer task code."""

TOTALS = {}


class LeakyMapper(Mapper):  # noqa: F821 -- never imported, parse-only
    def map(self, key, value, ctx):
        global TOTALS  # <- REP004
        TOTALS[key] = value
        value[0] = 0.0  # <- REP004
        value.sort()  # <- REP004
        ctx.emit(key, value)


class SideEffectReducer(Reducer):  # noqa: F821
    def reduce(self, key, values, ctx):
        values.append(None)  # <- REP004
        ctx.emit(key, len(values))


class CleanReducer(Reducer):  # noqa: F821
    def reduce(self, key, values, ctx):
        merged = list(values)
        merged.sort()
        ctx.emit(key, merged)
