"""Known-bad fixture: REP002 iteration over unordered sets."""


def direct(points):
    cells = {p.cell for p in points}
    for cell in cells:  # <- REP002
        yield cell


def through_list():
    seen = set()
    seen.add(1)
    return list(seen)  # <- REP002


def joined(names):
    tags = {n.strip() for n in names}
    return ",".join(tags)  # <- REP002


def comprehended(groups):
    replicated = set(groups) & set(groups[:1])
    return {g: i for i, g in enumerate(replicated)}  # <- REP002
