"""Known-bad REP009 fixture: guarded state touched without its lock.

Analysis data only — parsed by the checker, never imported or run.
"""

import threading

ORDER_A = threading.Lock()
ORDER_B = threading.Lock()


class Racy:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.items = []  # repro: guarded-by[_lock]
        self.count = 0  # repro: guarded-by[_lock]

    def locked_ok(self, item):
        with self._lock:
            self.items.append(item)
            return self._helper()

    def bad_read(self):
        return len(self.items)  # <- REP009

    def bad_write(self):
        self.count += 1  # <- REP009

    def taints_helper_entry(self):
        return self._helper()

    def _helper(self):
        return self.count  # <- REP009


def inconsistent_ab(payload):
    with ORDER_A:
        with ORDER_B:  # <- REP009
            return payload


def inconsistent_ba(payload):
    with ORDER_B:
        with ORDER_A:  # <- REP009
            return payload


def reacquires_held_lock(payload):
    with ORDER_A:
        with ORDER_A:  # <- REP009
            return payload
