"""Known-bad fixture: REP003 undocumented counter names."""

from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import cost_counter, tenant_counter


def mint(tenant):
    return f"custom.{tenant}.ops"


class CountingThing:
    def run(self, ctx, tenant):
        ctx.counters.inc("my_adhoc_counter")  # <- REP003
        ctx.counters.inc(counter_names.TOTALLY_BOGUS)  # <- REP003
        ctx.counters.inc(f"serve.rogue.{tenant}.queries")  # <- REP003
        ctx.counters.inc(mint(tenant))  # <- REP003
        ctx.counters.inc("serve.tenant.rogue.bandwidth")  # <- REP003
        ctx.counters.inc("skyline.tuple_compares")  # documented: fine
        ctx.counters.inc(counter_names.TUPLE_COMPARES)  # constant: fine
        ctx.counters.inc("serve.tenant.t0.queries")  # family instance: fine
        ctx.counters.inc(tenant_counter(tenant, "shed"))  # builder: fine
        ctx.counters.inc(f"serve.tenant.{tenant}.timed_out")  # family: fine
        ctx.counters.inc("mr.cost.rogue")  # <- REP003
        ctx.counters.inc("mr.cost.superstep.3.bogus_field")  # <- REP003
        ctx.counters.inc("mr.cost.rounds")  # documented: fine
        ctx.counters.inc("mr.cost.superstep.3.h_records")  # family instance: fine
        ctx.counters.inc(cost_counter(1, "h_bytes"))  # builder: fine
