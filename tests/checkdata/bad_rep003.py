"""Known-bad fixture: REP003 undocumented counter names."""

from repro.mapreduce import counters as counter_names


class CountingThing:
    def run(self, ctx):
        ctx.counters.inc("my_adhoc_counter")  # <- REP003
        ctx.counters.inc(counter_names.TOTALLY_BOGUS)  # <- REP003
        ctx.counters.inc("skyline.tuple_compares")  # documented: fine
        ctx.counters.inc(counter_names.TUPLE_COMPARES)  # constant: fine
