"""Known-bad fixture: REP006 broad exception handlers."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # <- REP006
        return None


def swallow_everything(fn):
    try:
        return fn()
    except:  # <- REP006
        return None


def swallow_in_tuple(fn):
    try:
        return fn()
    except (ValueError, Exception):  # <- REP006
        return None


def narrow(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None
