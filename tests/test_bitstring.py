"""Bitstring representation, merging, and Equation-2 pruning.

Pins the paper's running example: Figure 2's occupancy reads 011110100.
"""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid


@pytest.fixture
def g33():
    return Grid.unit(3, 2)


def figure2_data():
    """One point in each of Figure 2's non-empty cells {1, 2, 3, 4}...

    The paper's figure marks cells 1, 2, 3, 4 and 6 as non-empty,
    giving the bitstring 011110100.
    """
    g = Grid.unit(3, 2)
    points = []
    for cell in (1, 2, 3, 4, 6):
        points.append(g.min_corner(cell) + g.widths / 2.0)
    return np.vstack(points)


class TestConstruction:
    def test_paper_bitstring(self, g33):
        bs = Bitstring.from_data(g33, figure2_data())
        assert bs.to01() == "011110100"

    def test_from_data_empty(self, g33):
        bs = Bitstring.from_data(g33, np.empty((0, 2)))
        assert not bs.any()

    def test_duplicate_points_set_bit_once(self, g33):
        data = np.array([[0.1, 0.1]] * 10)
        bs = Bitstring.from_data(g33, data)
        assert bs.count() == 1

    def test_length_validated(self, g33):
        with pytest.raises(GridError):
            Bitstring(g33, np.zeros(5, dtype=bool))

    def test_from01_roundtrip(self, g33):
        bs = Bitstring.from01(g33, "011110100")
        assert bs.to01() == "011110100"
        with pytest.raises(GridError):
            Bitstring.from01(g33, "01")


class TestUnionAndBytes:
    def test_union_is_bitwise_or(self, g33):
        a = Bitstring.from01(g33, "100000000")
        b = Bitstring.from01(g33, "000000001")
        merged = Bitstring.union(g33, [a, b])
        assert merged.to01() == "100000001"

    def test_union_mirrors_split_data(self, g33, rng):
        """Algorithm 2 lines 1-3: OR of split bitstrings equals the
        bitstring of the whole dataset."""
        data = rng.random((200, 2))
        whole = Bitstring.from_data(g33, data)
        parts = [
            Bitstring.from_data(g33, chunk)
            for chunk in np.array_split(data, 7)
        ]
        assert Bitstring.union(g33, parts) == whole

    def test_union_grid_mismatch(self, g33):
        other = Bitstring(Grid.unit(2, 2))
        with pytest.raises(GridError):
            Bitstring.union(g33, [other])

    def test_bytes_roundtrip(self, g33):
        bs = Bitstring.from01(g33, "011110100")
        assert Bitstring.from_bytes(g33, bs.to_bytes()) == bs

    def test_bytes_are_packed(self):
        g = Grid.unit(2, 10)  # 1024 cells
        assert len(Bitstring(g).to_bytes()) == 128


class TestQueries:
    def test_count_and_set_indices(self, g33):
        bs = Bitstring.from01(g33, "011110100")
        assert bs.count() == 5
        assert bs.set_indices().tolist() == [1, 2, 3, 4, 6]

    def test_getitem_setitem(self, g33):
        bs = Bitstring(g33)
        assert not bs[0]
        bs[0] = True
        assert bs[0]

    def test_iter(self, g33):
        bs = Bitstring.from01(g33, "100000000")
        assert list(bs)[0] is True
        assert sum(list(bs)) == 1

    def test_copy_independent(self, g33):
        bs = Bitstring.from01(g33, "100000000")
        cp = bs.copy()
        cp[0] = False
        assert bs[0]

    def test_unhashable(self, g33):
        with pytest.raises(TypeError):
            hash(Bitstring(g33))


class TestPruning:
    def test_figure2_pruning(self, g33):
        """With {1,2,3,4,6} occupied: p1 (1,0) dominates nothing strictly
        ... cell 4 (1,1)'s DR is {8} (empty anyway); no occupied cell
        strictly dominates another occupied one except none -> pruning
        keeps all of {1,2,3,4,6}? p4 is strictly dominated only by p0
        (empty). Verify against the naive Algorithm 2 implementation."""
        bs = Bitstring.from01(g33, "011110100")
        assert bs.prune_dominated() == bs.prune_dominated_naive()

    def test_corner_occupancy_prunes_interior(self, g33):
        bs = Bitstring(g33)
        for cell in (0, 4, 8):
            bs[cell] = True
        pruned = bs.prune_dominated()
        # p0 dominates p4 and p8.
        assert pruned.set_indices().tolist() == [0]

    def test_pruning_matches_naive_random(self, g33, rng):
        for _ in range(20):
            bits = rng.random(9) < 0.5
            bs = Bitstring(g33, bits)
            assert bs.prune_dominated() == bs.prune_dominated_naive()

    def test_pruning_matches_naive_3d(self, rng):
        g = Grid.unit(3, 3)
        for _ in range(10):
            bits = rng.random(27) < 0.4
            bs = Bitstring(g, bits)
            assert bs.prune_dominated() == bs.prune_dominated_naive()

    def test_pruning_never_removes_minimal_cells(self, rng):
        """Equation 2 only clears cells whose tuples are all dominated."""
        g = Grid.unit(4, 2)
        bits = rng.random(16) < 0.6
        bs = Bitstring(g, bits)
        pruned = bs.prune_dominated()
        # the best occupied cell (minimal index sum) must survive
        occupied = bs.set_indices()
        if occupied.size:
            coords = g.coords_array()[occupied]
            best = occupied[np.lexsort(coords.T[::-1])][0]
            # find an occupied cell not strictly dominated by any other
            from repro.grid.regions import partition_dominates

            for p in occupied:
                if not any(
                    partition_dominates(g, int(q), int(p))
                    for q in occupied
                    if q != p
                ):
                    assert pruned[int(p)]

    def test_idempotent(self, g33, rng):
        bits = rng.random(9) < 0.5
        pruned = Bitstring(g33, bits).prune_dominated()
        assert pruned.prune_dominated() == pruned
