"""SKY-MR-lite (Park et al.): quadtree, sky-filter, end-to-end."""

import numpy as np
import pytest

from repro.algorithms.sky_mr import SKYMR, QuadtreeLeaf, SkyQuadtree
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.counters import TUPLES_PRUNED_BY_BITSTRING


class TestSkyQuadtree:
    def build(self, rng, n=200, d=2, **kw):
        sample = rng.random((n, d))
        return SkyQuadtree(sample, np.zeros(d), np.ones(d), **kw), sample

    def test_leaves_partition_the_box(self, rng):
        tree, _sample = self.build(rng, leaf_capacity=16, max_depth=4)
        probes = rng.random((500, 2))
        ids = tree.leaf_ids(probes)
        assert (ids >= 0).all()
        # each probe inside exactly its assigned leaf
        for i in range(0, 500, 17):
            leaf = tree.leaf_by_id(int(ids[i]))
            assert (probes[i] >= np.asarray(leaf.lows) - 1e-12).all()
            assert (probes[i] <= np.asarray(leaf.highs) + 1e-12).all()

    def test_assignment_unique(self, rng):
        """Boundary points land in exactly one leaf (first match wins
        and box geometry is half-open)."""
        tree, _ = self.build(rng, leaf_capacity=8, max_depth=3)
        grid_points = np.array(
            [[x, y] for x in (0.0, 0.25, 0.5, 1.0) for y in (0.0, 0.5, 1.0)]
        )
        ids = tree.leaf_ids(grid_points)
        assert (ids >= 0).all()

    def test_out_of_box_points_clamped(self, rng):
        tree, _ = self.build(rng)
        ids = tree.leaf_ids(np.array([[-1.0, 2.0], [5.0, 5.0]]))
        assert (ids >= 0).all()

    def test_dominated_leaf_marking_sound(self, rng):
        """Every point of a dominated leaf is dominated by a sample
        skyline point."""
        from repro.core.dominance import dominated_mask

        tree, _sample = self.build(rng, n=400, leaf_capacity=16, max_depth=4)
        for leaf in tree.leaves:
            if not leaf.dominated:
                continue
            corners = np.asarray([leaf.lows])
            assert dominated_mask(corners, tree.sample_skyline)[0]

    def test_leaf_capacity_respected_via_depth(self, rng):
        shallow, _ = self.build(rng, leaf_capacity=1000)
        assert len(shallow.leaves) == 1

    def test_empty_sample(self):
        tree = SkyQuadtree(
            np.empty((0, 2)), np.zeros(2), np.ones(2), max_depth=2
        )
        assert tree.sample_skyline.shape == (0, 2)
        assert not any(leaf.dominated for leaf in tree.leaves)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SkyQuadtree(np.zeros((1, 2)), np.zeros(2), np.ones(2), leaf_capacity=0)
        with pytest.raises(ValidationError):
            SkyQuadtree(np.zeros((1, 2)), np.zeros(2), np.ones(2), max_depth=-1)


class TestSKYMR:
    @pytest.mark.parametrize(
        "distribution", ["independent", "correlated", "anticorrelated"]
    )
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_matches_oracle(self, oracle, distribution, d):
        data = generate(distribution, 300, d, seed=78)
        result = SKYMR().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_sample_filter_prunes(self):
        data = generate("correlated", 2000, 3, seed=5)
        result = SKYMR(sample_size=512).compute(data)
        pruned = result.stats.jobs[0].counters[TUPLES_PRUNED_BY_BITSTRING]
        assert pruned > 1000  # most correlated tuples die pre-shuffle

    def test_artifacts(self, rng):
        result = SKYMR().compute(rng.random((300, 2)))
        assert result.artifacts["quadtree_leaves"] >= 1
        assert result.artifacts["sample_skyline_size"] >= 1
        assert 0 <= result.artifacts["dominated_leaves"] <= (
            result.artifacts["quadtree_leaves"]
        )

    def test_two_jobs(self, rng):
        result = SKYMR().compute(rng.random((100, 2)))
        assert [j.job_name for j in result.stats.jobs] == [
            "sky-mr-local",
            "sky-mr-merge",
        ]

    def test_small_sample_still_correct(self, oracle, rng):
        data = rng.random((300, 3))
        result = SKYMR(sample_size=8).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_deterministic(self, rng):
        data = rng.random((300, 3))
        a = SKYMR(sample_seed=3).compute(data)
        b = SKYMR(sample_seed=3).compute(data)
        assert np.array_equal(a.indices, b.indices)

    def test_empty(self):
        assert len(SKYMR().compute(np.empty((0, 3)))) == 0

    def test_duplicates(self):
        data = np.array([[0.2, 0.2]] * 3 + [[0.9, 0.9]])
        result = SKYMR().compute(data)
        assert sorted(result.indices.tolist()) == [0, 1, 2]

    def test_high_dimensional_depth_cap(self, oracle):
        data = generate("independent", 200, 7, seed=9)
        result = SKYMR().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_registry(self, oracle, rng):
        from repro import skyline

        data = rng.random((200, 2))
        result = skyline(data, algorithm="sky-mr", sample_size=64)
        assert set(result.indices.tolist()) == oracle(data)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SKYMR(sample_size=0)
