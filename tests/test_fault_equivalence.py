"""Cross-engine fault equivalence: faults change cost, never results.

For every registered MR algorithm, all four engines run under the
same seeded :class:`FaultPlan` — injecting at least one failure into
every map and reduce task, plus stragglers with speculation — and must
produce skylines byte-identical to the fault-free run, identical
counters and attempt histories to each other, and a simulated makespan
that charges the re-executed work.

CI runs this suite per engine at a nonzero fault rate via
``pytest -k serial|threads|processes|bsp`` (see
.github/workflows/ci.yml).
"""

from functools import lru_cache

import numpy as np
import pytest

from repro import skyline
from repro.bsp import BSPEngine
from repro.data.generators import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.mapreduce.trace import build_schedule

MR_ALGORITHMS = [
    "mr-gpsrs",
    "mr-gpmrs",
    "mr-bnl",
    "mr-sfs",
    "mr-angle",
    "mr-bitmap",
    "mr-hybrid",
    "sky-mr",
]

#: Every task fails its first attempt (rate 1.0, one budgeted failure),
#: a quarter of the surviving attempts straggle at 4x, and node 2 of
#: the simulated 5-node placement is lost — at least one failure in
#: every phase of every job, guaranteed deterministically.
PLAN = FaultPlan(
    seed=13,
    fail_rate=1.0,
    max_failures_per_task=1,
    slow_rate=0.25,
    lost_nodes=(2,),
    num_nodes=5,
)
RETRY = RetryPolicy(max_attempts=PLAN.min_attempts())

CLUSTER = SimulatedCluster(num_nodes=4)

ENGINES = {
    "serial": lambda: SerialEngine(retry=RETRY, faults=PLAN, speculative=True),
    "threads": lambda: ThreadPoolEngine(
        max_workers=4, retry=RETRY, faults=PLAN, speculative=True
    ),
    "processes": lambda: ProcessPoolEngine(
        max_workers=2, retry=RETRY, faults=PLAN, speculative=True
    ),
    "bsp": lambda: BSPEngine(retry=RETRY, faults=PLAN, speculative=True),
}


def _dataset(algorithm):
    """mr-bitmap only handles discrete domains (paper Section 2.2)."""
    if algorithm == "mr-bitmap":
        rng = np.random.default_rng(21)
        return rng.integers(0, 8, (160, 3)).astype(float)
    return generate("anticorrelated", 160, 3, seed=21)


def _fingerprint(result):
    """Everything that must be engine-independent under faults.

    Wall-clock attempt durations are excluded; outcomes, slowdowns,
    injected errors, counters, and shuffle bytes are not.
    """
    attempts = [
        (
            str(task.task_id),
            tuple(
                (a.attempt, a.outcome, a.slowdown, a.error)
                for a in task.attempts
            ),
        )
        for job in result.stats.jobs
        for task in job.map_tasks + job.reduce_tasks
    ]
    return (
        result.indices.tolist(),
        result.values.tolist(),
        [job.counters.as_dict() for job in result.stats.jobs],
        sum(job.shuffle_bytes for job in result.stats.jobs),
        attempts,
    )


@lru_cache(maxsize=None)
def _clean_run(algorithm):
    return skyline(
        _dataset(algorithm),
        algorithm=algorithm,
        cluster=CLUSTER,
        engine=SerialEngine(),
    )


@lru_cache(maxsize=None)
def _faulty_serial_fingerprint(algorithm):
    result = skyline(
        _dataset(algorithm),
        algorithm=algorithm,
        cluster=CLUSTER,
        engine=ENGINES["serial"](),
    )
    return _fingerprint(result)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_faulty_run_matches_fault_free_skyline(algorithm, engine_name):
    """Same skyline as the fault-free run; same fingerprint (counters,
    shuffle bytes, per-attempt history) as every other engine under the
    identical fault schedule."""
    clean = _clean_run(algorithm)
    faulty = skyline(
        _dataset(algorithm),
        algorithm=algorithm,
        cluster=CLUSTER,
        engine=ENGINES[engine_name](),
    )
    assert faulty.indices.tolist() == clean.indices.tolist()
    assert faulty.values.tolist() == clean.values.tolist()
    assert _fingerprint(faulty) == _faulty_serial_fingerprint(algorithm)
    # the plan guarantees one injected failure per task, so every phase
    # of every job re-executed at least once
    for job in faulty.stats.jobs:
        for kind in ("map", "reduce"):
            tasks = job._tasks_of(kind)
            assert job.total_attempts(kind) > len(tasks)
    assert faulty.runtime_s > clean.runtime_s


@pytest.mark.parametrize("algorithm", ["mr-gpmrs", "sky-mr"])
def test_schedule_charges_every_attempt(algorithm):
    """build_schedule replays the attempt-expanded makespan exactly and
    places failed/speculative attempts in the Gantt."""
    faulty = skyline(
        _dataset(algorithm),
        algorithm=algorithm,
        cluster=CLUSTER,
        engine=ENGINES["serial"](),
    )
    for job in faulty.stats.jobs:
        schedule = build_schedule(CLUSTER, job)
        assert schedule.makespan_s == pytest.approx(
            CLUSTER.job_makespan(job)
        )
        scheduled_units = sum(len(p.tasks) for p in schedule.phases)
        recorded_attempts = job.total_attempts("map") + job.total_attempts(
            "reduce"
        )
        assert scheduled_units == recorded_attempts
        outcomes = {t.outcome for p in schedule.phases for t in p.tasks}
        assert "failed" in outcomes
