"""Schedule reconstruction and Gantt rendering."""

import pytest

from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import TUPLE_COMPARES, Counters
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.mapreduce.trace import (
    JobSchedule,
    PhaseSchedule,
    ScheduledTask,
    build_schedule,
    render_gantt,
    render_pipeline_gantt,
)
from repro.mapreduce.types import TaskId


def task(kind, index, compares):
    return TaskStats(
        task_id=TaskId(kind, index),
        duration_s=0.0,
        records_in=0,
        records_out=0,
        bytes_out=0,
        counters=Counters({TUPLE_COMPARES: compares}),
    )


def cluster(**kw):
    defaults = dict(
        num_nodes=2,
        map_slots_per_node=1,
        reduce_slots_per_node=1,
        compare_rate=1.0,
        record_rate=1e12,
        task_overhead_s=0.0,
        bandwidth_bytes_per_s=100.0,
    )
    defaults.update(kw)
    return SimulatedCluster(**defaults)


def job_stats():
    stats = JobStats(job_name="demo")
    stats.map_tasks = [task("map", i, c) for i, c in enumerate([4, 3, 2, 1])]
    stats.reduce_tasks = [task("reduce", 0, 5)]
    stats.shuffle_bytes = 200
    return stats


class TestBuildSchedule:
    def test_makespan_matches_cluster_model(self):
        c = cluster()
        stats = job_stats()
        schedule = build_schedule(c, stats)
        assert schedule.makespan_s == pytest.approx(c.job_makespan(stats))

    def test_phases_ordered_and_contiguous(self):
        schedule = build_schedule(cluster(), job_stats())
        phases = schedule.phases
        assert [p.phase for p in phases] == ["map", "shuffle", "reduce"]
        assert phases[0].start_s == 0.0
        assert phases[1].start_s == pytest.approx(phases[0].end_s)
        assert phases[2].start_s == pytest.approx(phases[1].end_s)

    def test_greedy_placement(self):
        # durations 4,3,2,1 on 2 slots: slot0 gets 4 then 1; slot1 3,2.
        schedule = build_schedule(cluster(), job_stats())
        map_phase = schedule.phases[0]
        by_name = {t.name: t for t in map_phase.tasks}
        assert by_name["map-0000"].slot == 0
        assert by_name["map-0001"].slot == 1
        assert by_name["map-0002"].slot == 1  # least-loaded after 4 vs 3
        assert by_name["map-0003"].slot == 0
        assert map_phase.end_s == pytest.approx(5.0)

    def test_no_slot_overlap(self):
        schedule = build_schedule(cluster(), job_stats())
        for phase in (schedule.phases[0], schedule.phases[2]):
            by_slot = {}
            for t in sorted(phase.tasks, key=lambda t: t.start_s):
                last = by_slot.get(t.slot)
                if last is not None:
                    assert t.start_s >= last - 1e-12
                by_slot[t.slot] = t.end_s

    def test_shuffle_duration(self):
        schedule = build_schedule(cluster(), job_stats())
        assert schedule.phases[1].duration_s == pytest.approx(2.0)  # 200/100


class TestGantt:
    def test_render_contains_all_rows(self):
        text = render_gantt(build_schedule(cluster(), job_stats()))
        assert "map-slot-0" in text and "map-slot-1" in text
        assert "shuffle" in text and "reduce-slot-0" in text
        assert "#" in text and "~" in text

    def test_empty_schedule(self):
        stats = JobStats(job_name="empty")
        text = render_gantt(build_schedule(cluster(), stats))
        assert "empty schedule" in text

    def test_zero_byte_shuffle_renders_empty(self):
        """A job that moved no bytes has an instantaneous shuffle: the
        bar must be empty, not a one-column '~' pretending otherwise."""
        stats = job_stats()
        stats.shuffle_bytes = 0
        text = render_gantt(build_schedule(cluster(), stats))
        shuffle_row = next(
            line for line in text.splitlines() if "shuffle" in line
        )
        assert "~" not in shuffle_row
        assert "#" in text  # task rows still render

    def test_nonzero_shuffle_still_renders(self):
        text = render_gantt(build_schedule(cluster(), job_stats()))
        assert "~" in text

    def test_width_validated(self):
        with pytest.raises(ValidationError):
            render_gantt(build_schedule(cluster(), job_stats()), width=4)

    def test_pipeline_rendering(self):
        text = render_pipeline_gantt(cluster(), [job_stats(), job_stats()])
        assert text.count("demo:") == 2

    def test_adjacent_tasks_never_share_a_column(self):
        """Half-open painting regression: a task ending at time t and a
        task starting at t on the same slot must not overdraw each
        other's boundary cell (the old inclusive-end painting let the
        second bar overwrite the first's last column)."""
        schedule = JobSchedule(
            job_name="demo",
            phases=[
                PhaseSchedule(
                    phase="map",
                    start_s=0.0,
                    end_s=2.0,
                    tasks=[
                        ScheduledTask("a", 0, 0.0, 1.0, outcome="success"),
                        ScheduledTask("b", 0, 1.0, 2.0, outcome="failed"),
                    ],
                )
            ],
        )
        text = render_gantt(schedule, width=8)
        row = next(l for l in text.splitlines() if "map-slot-0" in l)
        # exactly half '#' and half 'x': the boundary cell belongs to
        # whatever starts there, and nothing is overdrawn.
        assert row.endswith("|####xxxx|")

    def test_retried_attempts_render_distinctly(self):
        """A task with a failed first attempt renders the re-execution:
        the failed unit paints 'x', the retry '#'."""
        from repro.mapreduce.metrics import AttemptRecord

        stats = JobStats(job_name="demo")
        retried = task("map", 0, 4)
        retried.attempts = [
            AttemptRecord(attempt=0, outcome="failed", error="boom"),
            AttemptRecord(attempt=1, outcome="success"),
        ]
        stats.map_tasks = [retried]
        stats.reduce_tasks = [task("reduce", 0, 2)]
        stats.shuffle_bytes = 100
        # one map slot so both attempt units land on the same row
        text = render_gantt(build_schedule(cluster(num_nodes=1), stats))
        map_row = next(l for l in text.splitlines() if "map-slot-0" in l)
        assert "x" in map_row and "#" in map_row


class TestEndToEndGantt:
    def test_real_pipeline_renders(self, rng):
        from repro import skyline
        from repro.mapreduce.trace import render_pipeline_gantt

        c = SimulatedCluster(num_nodes=3)
        result = skyline(rng.random((400, 3)), algorithm="mr-gpmrs", cluster=c)
        text = render_pipeline_gantt(c, result.stats.jobs)
        assert "bitstring" in text and "gpmrs-skyline" in text
