"""Fault injection, retry policy, and speculative execution.

The FaultPlan is the deterministic substitute for real cluster
failures: every test here asserts both the *semantics* (results
survive any fault schedule unchanged) and the *accounting* (failed and
speculative attempts are recorded per task and charged in the
makespan).
"""

import pytest

from repro.errors import TaskFailedError, ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import (
    NODE_LOSS_REEXECS,
    SPECULATIVE_ATTEMPTS,
    TASK_RETRIES,
)
from repro.mapreduce.engine import SerialEngine, attempt_task
from repro.mapreduce.faults import (
    FaultPlan,
    InjectedTaskFailure,
    NodeLostError,
    RetryPolicy,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import AttemptRecord
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.trace import build_schedule, render_gantt
from repro.mapreduce.types import IdentityReducer, Mapper, TaskId


class DoubleMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key % 2, value * 2)


def simple_job(n=12, splits=3, reducers=2):
    return MapReduceJob(
        name="faulty",
        splits=kv_splits([(i, i) for i in range(n)], splits),
        mapper_factory=DoubleMapper,
        reducer_factory=IdentityReducer,
        num_reducers=reducers,
    )


def engine_for(plan, max_attempts=None, speculative=False):
    attempts = max_attempts or plan.min_attempts()
    return SerialEngine(
        retry=RetryPolicy(max_attempts=attempts),
        faults=plan,
        speculative=speculative,
    )


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValidationError):
            FaultPlan(fail_rate=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(slow_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(map_fail_rate=2.0)

    def test_slow_factor_at_least_one(self):
        with pytest.raises(ValidationError):
            FaultPlan(slow_factor=0.5)

    def test_lost_nodes_in_range(self):
        with pytest.raises(ValidationError):
            FaultPlan(lost_nodes=(4,), num_nodes=4)

    def test_min_attempts(self):
        assert FaultPlan().min_attempts() == 3  # 2 failures + success
        assert FaultPlan(max_failures_per_task=1).min_attempts() == 2
        assert (
            FaultPlan(max_failures_per_task=1, lost_nodes=(0,)).min_attempts()
            == 3
        )


class TestFaultPlanDeterminism:
    def test_decisions_are_pure(self):
        plan = FaultPlan(seed=5, fail_rate=0.5, slow_rate=0.5)
        for kind in ("map", "reduce"):
            for index in range(20):
                task = TaskId(kind, index)
                for attempt in range(3):
                    first = plan.injected_error(task, attempt)
                    second = plan.injected_error(task, attempt)
                    assert (first is None) == (second is None)
                    assert plan.slowdown(task, attempt) == plan.slowdown(
                        task, attempt
                    )

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, fail_rate=0.5)
        b = FaultPlan(seed=2, fail_rate=0.5)
        decisions_a = [
            a.injected_error(TaskId("map", i), 0) is not None
            for i in range(64)
        ]
        decisions_b = [
            b.injected_error(TaskId("map", i), 0) is not None
            for i in range(64)
        ]
        assert decisions_a != decisions_b

    def test_rate_one_fails_every_budgeted_attempt(self):
        plan = FaultPlan(seed=0, fail_rate=1.0, max_failures_per_task=2)
        task = TaskId("map", 3)
        assert isinstance(plan.injected_error(task, 0), InjectedTaskFailure)
        assert isinstance(plan.injected_error(task, 1), InjectedTaskFailure)
        assert plan.injected_error(task, 2) is None  # budget exhausted

    def test_per_phase_rates(self):
        plan = FaultPlan(seed=0, map_fail_rate=1.0, reduce_fail_rate=0.0)
        assert plan.injected_error(TaskId("map", 0), 0) is not None
        assert plan.injected_error(TaskId("reduce", 0), 0) is None

    def test_node_loss_kills_first_attempt(self):
        plan = FaultPlan(seed=0, lost_nodes=(1,), num_nodes=4)
        lost = TaskId("map", 5)  # 5 % 4 == 1
        safe = TaskId("map", 6)
        assert isinstance(plan.injected_error(lost, 0), NodeLostError)
        assert plan.injected_error(lost, 1) is None  # retried elsewhere
        assert plan.injected_error(safe, 0) is None


class TestInjectedFailures:
    def test_results_survive_any_fault_schedule(self):
        plan = FaultPlan(seed=3, fail_rate=1.0)
        clean = SerialEngine().run(simple_job())
        faulty = engine_for(plan).run(simple_job())
        assert sorted(faulty.all_pairs()) == sorted(clean.all_pairs())

    def test_attempt_history_recorded(self):
        plan = FaultPlan(seed=3, fail_rate=1.0, max_failures_per_task=2)
        result = engine_for(plan).run(simple_job())
        for task in result.stats.map_tasks + result.stats.reduce_tasks:
            outcomes = [a.outcome for a in task.attempts]
            assert outcomes == ["failed", "failed", "success"]
            assert task.num_attempts == 3
            assert task.failed_attempts == 2

    def test_retry_counters_charged(self):
        plan = FaultPlan(seed=3, fail_rate=1.0, max_failures_per_task=1)
        result = engine_for(plan).run(simple_job(splits=3, reducers=2))
        # 3 map + 2 reduce tasks, one injected failure each
        assert result.stats.counters[TASK_RETRIES] == 5

    def test_exhausted_budget_fails_job(self):
        plan = FaultPlan(seed=3, fail_rate=1.0, max_failures_per_task=2)
        engine = engine_for(plan, max_attempts=2)
        with pytest.raises(TaskFailedError) as exc:
            engine.run(simple_job())
        assert "injected failure" in str(exc.value)

    def test_fault_free_runs_keep_clean_counters(self):
        result = SerialEngine().run(simple_job())
        assert TASK_RETRIES not in result.stats.counters
        assert SPECULATIVE_ATTEMPTS not in result.stats.counters


class TestNodeLoss:
    def test_lost_node_tasks_reexecute(self):
        plan = FaultPlan(seed=0, fail_rate=0.0, lost_nodes=(0,), num_nodes=3)
        result = engine_for(plan).run(simple_job(splits=6, reducers=3))
        clean = SerialEngine().run(simple_job(splits=6, reducers=3))
        assert sorted(result.all_pairs()) == sorted(clean.all_pairs())
        # map tasks 0 and 3 and reduce task 0 live on node 0
        relocated = [
            t
            for t in result.stats.map_tasks + result.stats.reduce_tasks
            if plan.node_of(t.task_id) == 0
        ]
        assert relocated and all(
            t.attempts[0].outcome == "failed"
            and "NodeLostError" in t.attempts[0].error
            for t in relocated
        )
        assert result.stats.counters[NODE_LOSS_REEXECS] == len(relocated)


class TestSpeculativeExecution:
    def plan(self):
        return FaultPlan(seed=1, slow_rate=1.0, slow_factor=4.0)

    def test_backup_copies_win_and_are_recorded(self):
        result = engine_for(self.plan(), speculative=True).run(simple_job())
        for task in result.stats.map_tasks + result.stats.reduce_tasks:
            outcomes = [a.outcome for a in task.attempts]
            assert outcomes == ["killed", "speculative"]
            assert task.attempts[-1].slowdown == 1.0
        assert result.stats.counters[SPECULATIVE_ATTEMPTS] == len(
            result.stats.map_tasks
        ) + len(result.stats.reduce_tasks)

    def test_speculation_preserves_results(self):
        clean = SerialEngine().run(simple_job())
        spec = engine_for(self.plan(), speculative=True).run(simple_job())
        assert sorted(spec.all_pairs()) == sorted(clean.all_pairs())

    def test_speculation_improves_straggler_makespan(self):
        # Overhead-free cluster with expensive records: task work
        # dominates, so a backup at 1x beats waiting for the 4x
        # straggler. (With overhead-dominated tiny tasks speculation
        # rightly costs more than it saves — Hadoop's short-task
        # heuristic exists for the same reason.)
        cluster = SimulatedCluster(
            num_nodes=4, task_overhead_s=0.0, record_rate=10.0
        )
        slow = engine_for(self.plan()).run(simple_job())
        spec = engine_for(self.plan(), speculative=True).run(simple_job())
        assert cluster.job_makespan(spec.stats) < cluster.job_makespan(
            slow.stats
        )

    def test_without_speculation_stragglers_just_run_slow(self):
        result = engine_for(self.plan()).run(simple_job())
        for task in result.stats.map_tasks:
            assert [a.outcome for a in task.attempts] == ["success"]
            assert task.attempts[0].slowdown == 4.0


class TestMakespanCharging:
    def cluster(self):
        return SimulatedCluster(num_nodes=2, task_overhead_s=0.05)

    def test_failed_attempts_lengthen_makespan(self):
        plan = FaultPlan(seed=3, fail_rate=1.0, max_failures_per_task=2)
        clean = SerialEngine().run(simple_job())
        faulty = engine_for(plan).run(simple_job())
        c = self.cluster()
        assert c.job_makespan(faulty.stats) > c.job_makespan(clean.stats)

    def test_attempt_durations_expand_history(self):
        plan = FaultPlan(seed=3, fail_rate=1.0, max_failures_per_task=1)
        faulty = engine_for(plan).run(simple_job())
        c = self.cluster()
        task = faulty.stats.map_tasks[0]
        durations = c.attempt_durations(task)
        assert len(durations) == 2  # one failure + the success
        assert all(d >= c.task_overhead_s for d in durations)

    def test_schedule_and_gantt_show_failed_attempts(self):
        plan = FaultPlan(seed=3, fail_rate=1.0, max_failures_per_task=1)
        faulty = engine_for(plan).run(simple_job())
        c = self.cluster()
        schedule = build_schedule(c, faulty.stats)
        assert schedule.makespan_s == pytest.approx(
            c.job_makespan(faulty.stats)
        )
        outcomes = {t.outcome for p in schedule.phases for t in p.tasks}
        assert "failed" in outcomes and "success" in outcomes
        text = render_gantt(schedule)
        assert "x" in text and "#" in text

    def test_gantt_shows_speculative_copies(self):
        plan = FaultPlan(seed=1, slow_rate=1.0)
        result = engine_for(plan, speculative=True).run(simple_job())
        text = render_gantt(build_schedule(self.cluster(), result.stats))
        assert "+" in text and "x" in text


class TestRetryPolicy:
    def test_validates_attempt_budget(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)

    def test_transient_errors_are_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.is_retryable(RuntimeError("boom"))
        assert policy.is_retryable(OSError("disk"))

    def test_programming_errors_are_not(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.is_retryable(ValidationError("bad config"))
        assert not policy.is_retryable(TypeError("bad call"))
        assert not policy.is_retryable(NotImplementedError())

    def test_attempt_task_accepts_legacy_int(self):
        calls = []

        def run_once(attempt):
            calls.append(attempt)
            if attempt == 0:
                raise RuntimeError("transient")
            return "ok"

        result, attempts = attempt_task(TaskId("map", 0), run_once, 2)
        assert result == "ok"
        assert calls == [0, 1]
        assert [a.outcome for a in attempts] == ["failed", "success"]

    def test_attempt_record_validates_outcome(self):
        with pytest.raises(ValidationError):
            AttemptRecord(attempt=0, outcome="exploded")
