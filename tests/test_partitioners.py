"""Shuffle partitioners."""

import pytest

from repro.errors import ValidationError
from repro.mapreduce.partitioners import (
    direct_partitioner,
    hash_partitioner,
    single_partitioner,
)


class TestHashPartitioner:
    def test_in_range(self):
        for key in ["a", "b", (1, 2), 17, None, 3.5]:
            assert 0 <= hash_partitioner(key, 7) < 7

    def test_int_keys_modulo(self):
        assert hash_partitioner(13, 5) == 3

    def test_deterministic(self):
        assert hash_partitioner("abc", 11) == hash_partitioner("abc", 11)

    def test_spreads_keys(self):
        targets = {hash_partitioner(f"key-{i}", 8) for i in range(100)}
        assert len(targets) == 8

    def test_validates_reducers(self):
        with pytest.raises(ValidationError):
            hash_partitioner("x", 0)


class TestDirectPartitioner:
    def test_key_is_index(self):
        assert direct_partitioner(3, 5) == 3
        assert direct_partitioner(0, 5) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            direct_partitioner(5, 5)
        with pytest.raises(ValidationError):
            direct_partitioner(-1, 5)

    def test_validates_reducers(self):
        with pytest.raises(ValidationError):
            direct_partitioner(0, 0)


class TestSinglePartitioner:
    def test_always_zero(self):
        assert single_partitioner("anything", 9) == 0
        assert single_partitioner(42, 1) == 0
