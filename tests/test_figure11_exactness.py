"""Exactness of the Figure-11 measurement pipeline.

When every grid cell of every mapper is occupied (the cost model's
first assumption), the busiest mapper's measured partition-compare
count must equal kappa_mapper *exactly* — the counting path, the
pruning geometry, and the closed forms all have to line up for this to
hold, which makes it a strong end-to-end consistency check.
"""

import numpy as np
import pytest

from repro import skyline
from repro.data.generators import generate
from repro.grid.bitstring import Bitstring
from repro.grid.cost import kappa_mapper, kappa_reducer
from repro.grid.grid import Grid
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import PARTITION_COMPARES
from repro.mapreduce.splits import contiguous_splits


def fully_occupied_per_mapper(data, n, d, num_mappers):
    grid = Grid.unit(n, d)
    for split in contiguous_splits(data, num_mappers):
        rows = np.vstack([row for _id, row in split])
        if Bitstring.from_data(grid, rows).count() != grid.num_partitions:
            return False
    return True


@pytest.mark.parametrize("n,d", [(3, 2), (3, 3), (2, 4), (2, 6)])
def test_mapper_compares_equal_kappa_when_dense(n, d):
    cluster = SimulatedCluster()
    data = generate("independent", 30_000, d, seed=42)
    assert fully_occupied_per_mapper(data, n, d, cluster.map_slots), (
        "test precondition: every mapper must fill every cell"
    )
    result = skyline(
        data,
        algorithm="mr-gpmrs",
        cluster=cluster,
        ppd=n,
        bounds=(np.zeros(d), np.ones(d)),
        num_reducers=13,
    )
    job = result.stats.jobs[1]
    measured = job.max_task_counter("map", PARTITION_COMPARES)
    assert measured == kappa_mapper(n, d)


def test_reducer_compares_bounded_by_kappa_reducer():
    cluster = SimulatedCluster()
    n, d = 3, 3
    data = generate("independent", 30_000, d, seed=42)
    result = skyline(
        data,
        algorithm="mr-gpmrs",
        cluster=cluster,
        ppd=n,
        bounds=(np.zeros(d), np.ones(d)),
        num_reducers=13,
    )
    job = result.stats.jobs[1]
    measured = job.max_task_counter("reduce", PARTITION_COMPARES)
    assert 0 < measured <= kappa_reducer(n, d)


def test_gpsrs_reducer_equals_full_grid_sum_when_dense():
    """MR-GPSRS's single reducer performs the comparisons of *all*
    surviving partitions: with dense occupancy that total is
    sum(rho_dom) over the d surfaces = kappa_mapper (same overlap
    bookkeeping)."""
    cluster = SimulatedCluster()
    n, d = 3, 3
    data = generate("independent", 30_000, d, seed=42)
    result = skyline(
        data,
        algorithm="mr-gpsrs",
        cluster=cluster,
        ppd=n,
        bounds=(np.zeros(d), np.ones(d)),
    )
    job = result.stats.jobs[1]
    measured = job.max_task_counter("reduce", PARTITION_COMPARES)
    assert measured == kappa_mapper(n, d)
