"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reference import bruteforce_skyline_indices
from repro.data.generators import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def mini_cluster():
    """A small cluster so tests schedule multiple waves."""
    return SimulatedCluster(
        num_nodes=3, reduce_slots_per_node=2, task_overhead_s=0.0
    )


@pytest.fixture
def engine():
    return SerialEngine()


@pytest.fixture(params=["independent", "correlated", "anticorrelated", "clustered"])
def distribution(request):
    return request.param


def oracle_ids(data) -> set:
    """Brute-force skyline indices as a set (the correctness oracle)."""
    return set(bruteforce_skyline_indices(np.asarray(data, dtype=np.float64)).tolist())


def small_dataset(distribution: str, n: int = 200, d: int = 3, seed: int = 0):
    return generate(distribution, n, d, seed=seed)


# Re-exported helpers for test modules.
@pytest.fixture
def oracle():
    return oracle_ids
