"""Input splitting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mapreduce.splits import contiguous_splits, kv_splits, round_robin_splits


class TestContiguousSplits:
    def test_covers_all_rows_once(self, rng):
        data = rng.random((103, 2))
        splits = contiguous_splits(data, 7)
        ids = [pid for split in splits for pid, _row in split]
        assert sorted(ids) == list(range(103))

    def test_balanced_within_one(self, rng):
        splits = contiguous_splits(rng.random((103, 2)), 7)
        sizes = [len(s) for s in splits]
        assert max(sizes) - min(sizes) <= 1

    def test_records_carry_row_values(self, rng):
        data = rng.random((10, 3))
        [split] = contiguous_splits(data, 1)
        for pid, row in split:
            assert np.array_equal(row, data[pid])

    def test_more_splits_than_rows(self):
        splits = contiguous_splits(np.ones((3, 2)), 8)
        assert len(splits) == 8
        assert sum(len(s) for s in splits) == 3

    def test_split_ids_sequential(self, rng):
        splits = contiguous_splits(rng.random((20, 2)), 4)
        assert [s.split_id for s in splits] == [0, 1, 2, 3]

    def test_validates_num_splits(self):
        with pytest.raises(ValidationError):
            contiguous_splits(np.ones((3, 2)), 0)


class TestRoundRobinSplits:
    def test_covers_all_rows_once(self, rng):
        data = rng.random((50, 2))
        splits = round_robin_splits(data, 6)
        ids = [pid for split in splits for pid, _row in split]
        assert sorted(ids) == list(range(50))

    def test_interleaves(self, rng):
        splits = round_robin_splits(rng.random((10, 2)), 3)
        assert [pid for pid, _ in splits[0]] == [0, 3, 6, 9]
        assert [pid for pid, _ in splits[1]] == [1, 4, 7]

    def test_validates_num_splits(self):
        with pytest.raises(ValidationError):
            round_robin_splits(np.ones((3, 2)), -1)


class TestKVSplits:
    def test_covers_all_pairs(self):
        pairs = [(i, f"v{i}") for i in range(11)]
        splits = kv_splits(pairs, 3)
        flat = [kv for s in splits for kv in s]
        assert flat == pairs

    def test_single_split(self):
        pairs = [("a", 1)]
        [split] = kv_splits(pairs, 1)
        assert list(split) == pairs

    def test_validates(self):
        with pytest.raises(ValidationError):
            kv_splits([], 0)
