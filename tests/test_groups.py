"""Independent partition groups: Algorithm 7, merging, responsibility.

Pins the paper's Figure 6 walk-through: non-empty {p1,p2,p3,p4,p6}
yields IG1={p3,p6}, IG2={p1,p3,p4}, IG3={p1,p2} (p1 and p3
replicated).
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.groups import (
    IndependentGroup,
    generate_independent_groups,
    merge_groups,
    merge_groups_communication,
    merge_groups_computation,
)
from repro.grid.regions import in_anti_dominating_region


@pytest.fixture
def figure6():
    g = Grid.unit(3, 2)
    bs = Bitstring.from01(g, "011110100")  # non-empty {1,2,3,4,6}
    return g, bs


class TestGeneration:
    def test_paper_figure6_groups(self, figure6):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        assert [grp.seed for grp in groups] == [6, 4, 2]
        assert groups[0].members == (3, 6)
        assert groups[1].members == (1, 3, 4)
        assert groups[2].members == (1, 2)

    def test_replicated_partitions(self, figure6):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        counts = {}
        for grp in groups:
            for p in grp.members:
                counts[p] = counts.get(p, 0) + 1
        assert counts[1] == 2 and counts[3] == 2  # the paper's p1, p3

    def test_every_nonempty_partition_covered(self, rng):
        g = Grid.unit(4, 2)
        bits = rng.random(16) < 0.5
        bs = Bitstring(g, bits)
        groups = generate_independent_groups(g, bs)
        covered = {p for grp in groups for p in grp.members}
        assert covered == set(bs.set_indices().tolist())

    def test_groups_are_independent(self, rng):
        """Definition 5: each group is closed under (non-empty) ADR."""
        g = Grid.unit(3, 3)
        bits = rng.random(27) < 0.5
        bs = Bitstring(g, bits)
        present = set(bs.set_indices().tolist())
        for grp in generate_independent_groups(g, bs):
            members = set(grp.members)
            for p in members:
                adr = {
                    q
                    for q in present
                    if in_anti_dominating_region(g, q, p)
                }
                assert adr <= members

    def test_deterministic(self, rng):
        g = Grid.unit(3, 3)
        bits = rng.random(27) < 0.5
        a = generate_independent_groups(g, Bitstring(g, bits))
        b = generate_independent_groups(g, Bitstring(g, bits))
        assert a == b

    def test_empty_bitstring(self):
        g = Grid.unit(3, 2)
        assert generate_independent_groups(g, Bitstring(g)) == []

    def test_adr_size(self):
        grp = IndependentGroup(seed=4, members=(1, 3, 4))
        assert grp.adr_size == 2
        assert 3 in grp and 7 not in grp


class TestMergingComputation:
    def test_respects_reducer_count(self, figure6):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        merged = merge_groups_computation(groups, 2)
        assert len(merged) == 2

    def test_fewer_groups_than_reducers(self, figure6):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        merged = merge_groups_computation(groups, 10)
        assert len(merged) == len(groups)

    def test_balances_cost(self):
        groups = [
            IndependentGroup(seed=i, members=tuple(range(i + 1)))
            for i in (9, 7, 5, 3, 1)
        ]
        merged = merge_groups_computation(groups, 2)
        loads = sorted(m.cost for m in merged)
        # LPT on costs {9,7,5,3,1}: {9,3,1}=13 vs {7,5}=12.
        assert loads == [12, 13]

    def test_validation(self):
        with pytest.raises(ValidationError):
            merge_groups_computation([], 0)


class TestMergingCommunication:
    def test_merges_most_overlapping(self):
        groups = [
            IndependentGroup(seed=10, members=(1, 2, 3, 10)),
            IndependentGroup(seed=11, members=(1, 2, 3, 11)),
            IndependentGroup(seed=12, members=(7, 12)),
        ]
        merged = merge_groups_communication(groups, 2)
        by_seeds = {
            frozenset(g.seed for g in m.groups) for m in merged
        }
        assert frozenset({10, 11}) in by_seeds

    def test_respects_reducer_count(self, figure6):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        assert len(merge_groups_communication(groups, 1)) == 1


class TestDispatchAndResponsibility:
    def test_dispatch(self, figure6):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        assert merge_groups(groups, 2, "computation")
        assert merge_groups(groups, 2, "communication")
        with pytest.raises(ValidationError):
            merge_groups(groups, 2, "nope")

    def test_each_partition_has_exactly_one_responsible_reducer(
        self, figure6
    ):
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        for r in (1, 2, 3, 5):
            merged = merge_groups(groups, r)
            seen = []
            for m in merged:
                seen.extend(m.responsible)
            assert sorted(seen) == sorted(set(seen))  # no duplicates
            assert set(seen) == {1, 2, 3, 4, 6}  # full coverage

    def test_responsible_subset_of_partitions(self, rng):
        g = Grid.unit(3, 3)
        bs = Bitstring(g, rng.random(27) < 0.5)
        groups = generate_independent_groups(g, bs)
        if not groups:
            pytest.skip("empty occupancy drawn")
        for m in merge_groups(groups, 4):
            assert set(m.responsible) <= set(m.partitions)

    def test_designation_prefers_cheapest_group(self, figure6):
        """Section 5.4.2: the group with minimal |pm.ADR| outputs the
        replicated partition."""
        g, bs = figure6
        groups = generate_independent_groups(g, bs)
        merged = merge_groups(groups, 3)
        # p3 is in IG1 (seed 6, adr 1) and IG2 (seed 4, adr 2):
        # IG1's reducer must own it. p1 is in IG2 (adr 2) and IG3
        # (seed 2, adr 1): IG3's reducer must own it.
        owner_of = {}
        for m in merged:
            for p in m.responsible:
                owner_of[p] = {grp.seed for grp in m.groups}
        assert 6 in owner_of[3]
        assert 2 in owner_of[1]
