"""Figure experiments: smoke runs at tiny scale + shape assertions.

These use very small cardinalities so the whole module stays fast; the
full-scale shape validation lives in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    auto_tpp,
    run_ablation_merging,
    run_ablation_pruning,
    run_figure7,
    run_figure10,
    run_figure11,
)
from repro.mapreduce.cluster import SimulatedCluster

TINY = 0.002  # paper cards 100k/2M -> 200/4000


@pytest.fixture(scope="module")
def cluster():
    return SimulatedCluster()


class TestAutoTPP:
    def test_large_cardinality_uses_default(self):
        assert auto_tpp(2_000_000, 3) == 512

    def test_small_high_d_shrinks(self):
        assert auto_tpp(4000, 8) == 15

    def test_floor(self):
        assert auto_tpp(100, 10) == 4


class TestFigure7:
    def test_quick_run_structure(self, cluster):
        report = run_figure7(scale=TINY, quick=True, cluster=cluster)
        assert report.figure_id == "Figure 7"
        assert len(report.panels) == 4
        rendered = report.render()
        assert "mr-gpsrs" in rendered and "mr-angle" in rendered

    def test_no_dnf_on_independent(self, cluster):
        report = run_figure7(scale=TINY, quick=True, cluster=cluster)
        for panel in report.panels:
            for results in panel.series.values():
                assert all(not r.is_dnf for r in results)

    def test_skyline_sizes_agree_across_algorithms(self, cluster):
        report = run_figure7(scale=TINY, quick=True, cluster=cluster)
        for panel in report.panels:
            series = list(panel.series.values())
            for i in range(len(panel.x_values)):
                sizes = {s[i].skyline_size for s in series if not s[i].is_dnf}
                assert len(sizes) == 1  # all algorithms agree


class TestFigure10:
    def test_x_one_is_gpsrs(self, cluster):
        report = run_figure10(scale=TINY, quick=True, cluster=cluster)
        for panel in report.panels:
            first = panel.series["mr-gpmrs"][0]
            assert first.cell.algorithm == "mr-gpsrs"

    def test_reducer_counts_requested(self, cluster):
        report = run_figure10(scale=TINY, quick=True, cluster=cluster)
        panel = report.panels[0]
        opts = [r.cell.option_dict() for r in panel.series["mr-gpmrs"][1:]]
        assert [o["num_reducers"] for o in opts] == panel.x_values[1:]


class TestFigure11:
    def test_estimates_are_upper_bounds(self, cluster):
        report = run_figure11(scale=TINY, quick=True, cluster=cluster)
        rendered = report.render()
        assert "measured(independent)" in rendered
        assert "estimate(independent)" in rendered
        # Section 6: the estimate is a worst-case upper bound.
        for dist in ("independent", "anticorrelated"):
            results = report.panels[0].series[dist]
            for r in results:
                from repro.grid.cost import kappa_mapper

                n = r.artifacts["grid"].n
                d = r.cell.workload.dimensionality
                assert r.max_mapper_compares <= kappa_mapper(n, d)


class TestAblations:
    def test_merging_ablation_runs(self, cluster):
        report = run_ablation_merging(scale=TINY, cluster=cluster)
        assert "computation" in report.render()

    def test_pruning_ablation_shape(self, cluster):
        """Pruning may only reduce shuffle volume."""
        report = run_ablation_pruning(scale=TINY, cluster=cluster)
        for panel in report.panels:
            on, off = panel.series["mr-gpsrs"]
            assert on.shuffle_bytes <= off.shuffle_bytes
            assert on.skyline_size == off.skyline_size


class TestRegistryOfExperiments:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablation-merging",
            "ablation-ppd",
            "ablation-pruning",
            "ablation-local",
            "cost-frontier",
        }


class TestCSVExport:
    def test_to_csv_roundtrips_runtimes(self, cluster, tmp_path):
        import csv

        report = run_figure10(scale=TINY, quick=True, cluster=cluster)
        path = str(tmp_path / "fig10.csv")
        report.to_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "Figure 10"
        # one data row per x value per panel
        data_rows = [r for r in rows if r and r[0].isdigit()]
        expected = sum(len(p.x_values) for p in report.panels)
        assert len(data_rows) == expected
