"""MR-Bitmap baseline (Zhang et al.) — discrete domains only."""

import numpy as np
import pytest

from repro.algorithms.mr_bitmap import MRBitmap
from repro.errors import AlgorithmError, TaskFailedError, ValidationError


def discrete(rng, n, d, levels=6):
    return rng.integers(0, levels, (n, d)).astype(float)


class TestMRBitmap:
    def test_matches_oracle(self, oracle, rng):
        data = discrete(rng, 300, 3)
        result = MRBitmap().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    @pytest.mark.parametrize("reducers", [1, 3, 7])
    def test_reducer_count_invariant(self, oracle, rng, reducers):
        data = discrete(rng, 200, 3)
        result = MRBitmap(num_reducers=reducers).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_continuous_data_rejected(self, rng):
        data = rng.random((200, 3))
        with pytest.raises(TaskFailedError) as exc:
            MRBitmap(max_distinct=16).compute(data)
        assert isinstance(exc.value.cause, AlgorithmError)
        assert "distinct" in str(exc.value.cause)

    def test_distinct_counts_reported(self, rng):
        data = discrete(rng, 100, 2, levels=4)
        result = MRBitmap().compute(data)
        counts = result.artifacts["distinct_counts"]
        assert set(counts) == {0, 1}
        assert all(v <= 4 for v in counts.values())

    def test_replication_cost_visible(self, rng):
        """The broadcast-to-every-reducer shuffle is why MR-Bitmap does
        not scale: bytes grow with the reducer count."""
        data = discrete(rng, 300, 2)
        small = MRBitmap(num_reducers=2).compute(data)
        large = MRBitmap(num_reducers=8).compute(data)
        assert (
            large.stats.jobs[1].shuffle_bytes
            > small.stats.jobs[1].shuffle_bytes
        )

    def test_duplicates(self):
        data = np.array([[1.0, 1.0]] * 3 + [[2.0, 2.0]])
        result = MRBitmap().compute(data)
        assert sorted(result.indices.tolist()) == [0, 1, 2]

    def test_empty(self):
        assert len(MRBitmap().compute(np.empty((0, 2)))) == 0

    def test_validates(self):
        with pytest.raises(ValidationError):
            MRBitmap(max_distinct=0)
        with pytest.raises(ValidationError):
            MRBitmap(num_reducers=0)
