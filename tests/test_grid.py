"""Grid partitioning: indexing, cell assignment, geometry."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid.grid import MAX_PARTITIONS, Grid


class TestConstruction:
    def test_basic(self):
        g = Grid.unit(3, 2)
        assert g.n == 3 and g.d == 2 and g.num_partitions == 9

    def test_fit_uses_data_bounds(self):
        g = Grid.fit([[0.0, 10.0], [4.0, 20.0]], n=2)
        assert g.lows.tolist() == [0.0, 10.0]
        assert g.highs.tolist() == [4.0, 20.0]

    def test_rejects_bad_n(self):
        with pytest.raises(GridError):
            Grid.unit(0, 2)
        with pytest.raises(GridError):
            Grid(2.5, [0.0], [1.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(GridError):
            Grid(2, [1.0], [0.0])

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(GridError):
            Grid(2, [0.0, 0.0], [1.0])

    def test_rejects_oversized_grids(self):
        with pytest.raises(GridError):
            Grid.unit(2, 30)  # 2^30 cells > MAX_PARTITIONS
        assert 2 ** 24 == MAX_PARTITIONS

    def test_equality_and_hash(self):
        assert Grid.unit(3, 2) == Grid.unit(3, 2)
        assert Grid.unit(3, 2) != Grid.unit(4, 2)
        assert hash(Grid.unit(3, 2)) == hash(Grid.unit(3, 2))


class TestIndexing:
    def test_column_major_roundtrip(self):
        g = Grid.unit(3, 2)
        for index in range(9):
            assert g.index_of(g.coords_of(index)) == index

    def test_dimension_zero_varies_fastest(self):
        g = Grid.unit(3, 2)
        assert g.coords_of(0) == (0, 0)
        assert g.coords_of(1) == (1, 0)
        assert g.coords_of(3) == (0, 1)
        assert g.coords_of(8) == (2, 2)

    def test_three_dimensions(self):
        g = Grid.unit(2, 3)
        assert g.coords_of(7) == (1, 1, 1)
        assert g.index_of((0, 1, 1)) == 6

    def test_out_of_range_rejected(self):
        g = Grid.unit(3, 2)
        with pytest.raises(GridError):
            g.coords_of(9)
        with pytest.raises(GridError):
            g.index_of((3, 0))
        with pytest.raises(GridError):
            g.index_of((0,))

    def test_coords_array_matches_coords_of(self):
        g = Grid.unit(3, 3)
        arr = g.coords_array()
        for index in range(g.num_partitions):
            assert tuple(arr[index]) == g.coords_of(index)


class TestCellAssignment:
    def test_half_open_cells(self):
        g = Grid.unit(2, 1)
        assert g.cell_index([0.0]) == 0
        assert g.cell_index([0.49]) == 0
        assert g.cell_index([0.5]) == 1  # boundary goes to the upper cell

    def test_top_boundary_closed(self):
        g = Grid.unit(2, 1)
        assert g.cell_index([1.0]) == 1  # max clamps into the last cell

    def test_out_of_bounds_clamped(self):
        g = Grid.unit(2, 2)
        assert g.cell_index([-5.0, 5.0]) == g.index_of((0, 1))

    def test_vectorised_matches_scalar(self, rng):
        g = Grid.unit(4, 3)
        data = rng.random((100, 3))
        indices = g.cell_indices(data)
        for i in range(100):
            assert indices[i] == g.cell_index(data[i])

    def test_dimension_mismatch(self):
        with pytest.raises(GridError):
            Grid.unit(2, 2).cell_indices(np.zeros((3, 3)))

    def test_degenerate_dimension(self):
        """All-equal dimension: everything lands in coordinate 0."""
        g = Grid(3, [0.0, 5.0], [1.0, 5.0])
        assert g.cell_index([0.9, 5.0]) == g.index_of((2, 0))


class TestGeometry:
    def test_corners(self):
        g = Grid.unit(3, 2)
        index = g.index_of((1, 2))
        assert np.allclose(g.min_corner(index), [1 / 3, 2 / 3])
        assert np.allclose(g.max_corner(index), [2 / 3, 1.0])

    def test_corners_respect_offset_bounds(self):
        g = Grid(2, [10.0], [20.0])
        assert np.allclose(g.min_corner(1), [15.0])
        assert np.allclose(g.max_corner(1), [20.0])

    def test_shape_reshape_consistency(self):
        """Fortran-order reshape puts cell (c0, c1) at tensor[c0, c1]."""
        g = Grid.unit(3, 2)
        flat = np.arange(9)
        tensor = flat.reshape(g.shape(), order="F")
        for index in range(9):
            c = g.coords_of(index)
            assert tensor[c] == index
