"""Property-based tests of the MapReduce engine itself."""

from collections import Counter as Multiset

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadPoolEngine
from repro.mapreduce.partitioners import hash_partitioner
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import IdentityMapper, IdentityReducer, Mapper, Reducer


class KeyedEmitter(Mapper):
    """Emit (value % 5, value) so keys collide across splits."""

    def map(self, key, value, ctx):
        ctx.emit(value % 5, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


pairs_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(-100, 100)),
    min_size=0,
    max_size=60,
)


class TestEngineProperties:
    @settings(max_examples=50, deadline=None)
    @given(pairs=pairs_strategy, splits=st.integers(1, 6), reducers=st.integers(1, 5))
    def test_identity_job_preserves_multiset(self, pairs, splits, reducers):
        if not pairs:
            return
        job = MapReduceJob(
            name="identity",
            splits=kv_splits(pairs, splits),
            mapper_factory=IdentityMapper,
            reducer_factory=IdentityReducer,
            num_reducers=reducers,
        )
        result = SerialEngine().run(job)
        assert Multiset(result.all_pairs()) == Multiset(pairs)

    @settings(max_examples=50, deadline=None)
    @given(pairs=pairs_strategy, splits=st.integers(1, 6), reducers=st.integers(1, 5))
    def test_partitioning_is_respected(self, pairs, splits, reducers):
        if not pairs:
            return
        job = MapReduceJob(
            name="keyed",
            splits=kv_splits(pairs, splits),
            mapper_factory=KeyedEmitter,
            reducer_factory=IdentityReducer,
            num_reducers=reducers,
        )
        result = SerialEngine().run(job)
        for r, chunk in enumerate(result.reducer_outputs):
            for key, _value in chunk:
                assert hash_partitioner(key, reducers) == r

    @settings(max_examples=40, deadline=None)
    @given(pairs=pairs_strategy, splits=st.integers(1, 6))
    def test_split_count_never_changes_results(self, pairs, splits):
        if not pairs:
            return
        outputs = []
        for s in (1, splits):
            job = MapReduceJob(
                name="sum",
                splits=kv_splits(pairs, s),
                mapper_factory=KeyedEmitter,
                reducer_factory=SumReducer,
                num_reducers=2,
            )
            outputs.append(dict(SerialEngine().run(job).all_pairs()))
        assert outputs[0] == outputs[1]

    @settings(max_examples=30, deadline=None)
    @given(pairs=pairs_strategy)
    def test_combiner_invariance_for_associative_reduce(self, pairs):
        """Sum is associative/commutative: adding the combiner must not
        change any result."""
        if not pairs:
            return

        def run(combiner):
            job = MapReduceJob(
                name="sum",
                splits=kv_splits(pairs, 4),
                mapper_factory=KeyedEmitter,
                reducer_factory=SumReducer,
                combiner_factory=combiner,
                num_reducers=3,
            )
            return dict(SerialEngine().run(job).all_pairs())

        assert run(None) == run(SumReducer)

    @settings(max_examples=20, deadline=None)
    @given(pairs=pairs_strategy, workers=st.integers(1, 4))
    def test_thread_engine_equivalent_to_serial(self, pairs, workers):
        if not pairs:
            return

        def run(engine):
            job = MapReduceJob(
                name="sum",
                splits=kv_splits(pairs, 3),
                mapper_factory=KeyedEmitter,
                reducer_factory=SumReducer,
                num_reducers=2,
            )
            return dict(engine.run(job).all_pairs())

        assert run(SerialEngine()) == run(ThreadPoolEngine(max_workers=workers))

    @settings(max_examples=30, deadline=None)
    @given(pairs=pairs_strategy)
    def test_record_counters_are_exact(self, pairs):
        if not pairs:
            return
        job = MapReduceJob(
            name="identity",
            splits=kv_splits(pairs, 3),
            mapper_factory=IdentityMapper,
            reducer_factory=IdentityReducer,
            num_reducers=2,
        )
        result = SerialEngine().run(job)
        # mapper records_in == len(pairs); reducer records_out likewise
        map_in = sum(t.records_in for t in result.stats.map_tasks)
        red_out = sum(t.records_out for t in result.stats.reduce_tasks)
        assert map_in == len(pairs)
        assert red_out == len(pairs)
