"""Determinism regression suite for the set-order hazard surface.

``repro.grid.groups`` and ``repro.algorithms.common`` are the modules
where unordered-set iteration could leak Python hash order into group
assignments and skyline output (the REP002 hazard class).  This suite
pins the guarantees from three directions:

* **hash-seed invariance** — the full group pipeline and an mr-gpmrs
  skyline are computed in subprocesses under different
  ``PYTHONHASHSEED`` values and must agree byte for byte (any
  set/str-hash order leak anywhere in the pipeline fails this);
* **permutation invariance** — functions documented as order-free
  really are, under shuffled inputs;
* **constructor guards** — the invariants the determinism rests on
  (sorted group members, globally unique output ids) raise loudly
  instead of silently reordering.
"""

import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.algorithms.common import assemble_result, compare_partitions_within
from repro.errors import AlgorithmError, ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.groups import (
    IndependentGroup,
    generate_independent_groups,
    merge_groups,
)
from repro.core.pointset import PointSet
from repro.mapreduce.counters import Counters

SRC = Path(__file__).resolve().parent.parent / "src"

HASHSEED_SCRIPT = """
import json
import numpy as np
from repro import skyline
from repro.data import generate
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.groups import generate_independent_groups, merge_groups

grid = Grid.unit(4, 3)
rng = np.random.default_rng(5)
bits = rng.random(64) < 0.6
groups = generate_independent_groups(grid, Bitstring(grid, bits))
merges = {
    strategy: [
        [list(g.partitions), list(g.responsible)]
        for g in merge_groups(groups, 3, strategy)
    ]
    for strategy in ("computation", "communication", "balanced")
}
data = generate("anticorrelated", 500, 3, seed=9)
result = skyline(data, algorithm="mr-gpmrs")
print(json.dumps({
    "groups": [[g.seed, list(g.members)] for g in groups],
    "merges": merges,
    "skyline": sorted(result.indices.tolist()),
}))
"""


def _run_under_hashseed(seed):
    env = dict(os.environ, PYTHONHASHSEED=str(seed), PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-c", HASHSEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


class TestHashSeedInvariance:
    def test_groups_merging_and_skyline_ignore_hash_order(self):
        baseline = _run_under_hashseed(0)
        assert baseline["skyline"], "skyline unexpectedly empty"
        for seed in (42, 31337):
            assert _run_under_hashseed(seed) == baseline


class TestPermutationInvariance:
    def test_assemble_result_ignores_pair_order(self):
        rng = np.random.default_rng(2)
        pairs = [
            (cell, PointSet(
                np.arange(3, dtype=np.int64) + 10 * cell,
                rng.random((3, 2)),
            ))
            for cell in (5, 1, 9, 3)
        ]
        ids, values = assemble_result(list(pairs), 2)
        for _ in range(5):
            rng.shuffle(pairs)
            ids2, values2 = assemble_result(list(pairs), 2)
            np.testing.assert_array_equal(ids, ids2)
            np.testing.assert_array_equal(values, values2)

    def test_compare_partitions_ignores_dict_insertion_order(self):
        grid = Grid.unit(3, 2)
        rng = np.random.default_rng(7)
        cells = [0, 1, 3, 4, 8]
        base = {
            cell: PointSet(
                np.arange(4, dtype=np.int64) + 10 * cell,
                grid.min_corner(cell) + 0.3 * rng.random((4, 2)),
            )
            for cell in cells
        }

        def run(order):
            ctx = SimpleNamespace(counters=Counters())
            skylines = {
                c: PointSet(base[c].ids.copy(), base[c].values.copy())
                for c in order
            }
            compare_partitions_within(skylines, grid, ctx)
            return (
                {c: sorted(s.ids.tolist()) for c, s in skylines.items()},
                ctx.counters.as_dict(),
            )

        survivors, counts = run(cells)
        assert run(list(reversed(cells))) == (survivors, counts)
        assert run([3, 8, 0, 4, 1]) == (survivors, counts)


class TestGuards:
    def test_group_members_must_be_sorted(self):
        with pytest.raises(ValidationError, match="ascending"):
            IndependentGroup(seed=3, members=(3, 1, 2))

    def test_group_members_must_be_unique(self):
        with pytest.raises(ValidationError, match="ascending"):
            IndependentGroup(seed=2, members=(1, 2, 2))

    def test_group_seed_must_be_member(self):
        with pytest.raises(ValidationError, match="missing"):
            IndependentGroup(seed=9, members=(1, 2))

    def test_generated_groups_satisfy_the_guard(self):
        grid = Grid.unit(3, 3)
        rng = np.random.default_rng(1)
        bits = rng.random(27) < 0.5
        groups = generate_independent_groups(grid, Bitstring(grid, bits))
        assert groups  # guard ran in every constructor without raising
        merged = merge_groups(groups, 2, "balanced")
        assert all(
            g.partitions == tuple(sorted(g.partitions)) for g in merged
        )

    def test_assemble_result_rejects_duplicate_row_ids(self):
        points = PointSet(
            np.array([1, 2], dtype=np.int64), np.zeros((2, 2))
        )
        with pytest.raises(AlgorithmError, match="duplicate row ids"):
            assemble_result([(0, points), (1, points)], 2)
