"""The public API surface: registry, repro.skyline, result type,
centralized wrappers."""

import numpy as np
import pytest

from repro import available_algorithms, make_algorithm, skyline
from repro.algorithms.base import SkylineResult
from repro.algorithms.centralized import CentralizedSkyline
from repro.errors import UnknownAlgorithmError, ValidationError


class TestRegistry:
    def test_all_expected_names_present(self):
        names = available_algorithms()
        for expected in (
            "mr-gpsrs",
            "mr-gpmrs",
            "mr-bnl",
            "mr-sfs",
            "mr-angle",
            "mr-bitmap",
            "mr-hybrid",
            "bnl",
            "sfs",
            "bitmap",
            "bruteforce",
        ):
            assert expected in names

    def test_make_algorithm_forwards_kwargs(self):
        algo = make_algorithm("mr-gpmrs", num_reducers=5)
        assert algo.num_reducers == 5

    def test_unknown_name(self):
        with pytest.raises(UnknownAlgorithmError):
            make_algorithm("mr-psychic")


class TestSkylineFunction:
    def test_default_algorithm(self, oracle, rng):
        data = rng.random((150, 3))
        result = skyline(data)
        assert isinstance(result, SkylineResult)
        assert result.algorithm == "mr-gpmrs"
        assert set(result.indices.tolist()) == oracle(data)

    def test_list_input(self):
        result = skyline([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        assert sorted(result.indices.tolist()) == [0, 1]

    def test_prefs_max(self, rng):
        data = rng.random((100, 2))
        result = skyline(data, algorithm="sfs", prefs="max")
        neg = -data
        from repro.core.reference import bruteforce_skyline_indices

        expect = set(bruteforce_skyline_indices(neg).tolist())
        assert set(result.indices.tolist()) == expect

    def test_values_in_original_scale_with_max_prefs(self, rng):
        data = rng.random((100, 2))
        result = skyline(data, algorithm="sfs", prefs=["min", "max"])
        assert np.array_equal(result.values, data[result.indices])

    def test_algorithm_options_forwarded(self, rng):
        result = skyline(rng.random((100, 2)), algorithm="mr-gpsrs", ppd=5)
        assert result.artifacts["grid"].n == 5

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            skyline([[1.0, float("nan")]])


class TestSkylineResult:
    def test_len_and_fraction(self, rng):
        data = rng.random((200, 2))
        result = skyline(data, algorithm="sfs")
        assert len(result) == result.indices.shape[0]
        assert result.skyline_fraction(200) == pytest.approx(
            len(result) / 200
        )
        assert result.skyline_fraction(0) == 0.0

    def test_id_set(self, rng):
        result = skyline(rng.random((50, 2)), algorithm="sfs")
        assert result.id_set() == set(result.indices.tolist())

    def test_runtime_prefers_simulated(self, rng):
        result = skyline(rng.random((50, 2)), algorithm="mr-gpsrs")
        assert result.runtime_s == result.stats.simulated_s


class TestCentralized:
    @pytest.mark.parametrize("method", ["bnl", "sfs", "bruteforce"])
    def test_methods_match(self, oracle, rng, method):
        data = rng.random((120, 3))
        result = CentralizedSkyline(method=method).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_bitmap_method_on_discrete(self, oracle, rng):
        data = rng.integers(0, 5, (150, 3)).astype(float)
        result = CentralizedSkyline(method="bitmap").compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_name_reflects_method(self):
        assert CentralizedSkyline(method="bnl").name == "centralized-bnl"

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            CentralizedSkyline(method="dreams")

    def test_env_validation(self, rng):
        from repro.algorithms.base import RunEnvironment

        env = RunEnvironment(num_mappers=0)
        with pytest.raises(ValidationError):
            env.resolved_num_mappers()
