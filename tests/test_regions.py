"""Partition dominance, DR/ADR, maximum partitions.

Includes the paper's worked examples: Figure 2's 3x3 grid has
p4.DR = {p8} and p4.ADR = {p0, p1, p3}.
"""

import itertools

import numpy as np
import pytest

from repro.grid.grid import Grid
from repro.grid import regions


@pytest.fixture
def g33():
    return Grid.unit(3, 2)


class TestPaperFigure2:
    def test_p4_dominating_region(self, g33):
        assert list(regions.dominating_region(g33, 4)) == [8]

    def test_p4_anti_dominating_region(self, g33):
        assert list(regions.anti_dominating_region(g33, 4)) == [0, 1, 3]

    def test_p0_dominates_interior(self, g33):
        assert set(regions.dominating_region(g33, 0)) == {4, 5, 7, 8}

    def test_p2_adr_matches_rho_dom(self, g33):
        # p2 has 1-based coords (3, 1): rho_dom = 3*1 - 1 = 2 -> {p0, p1}
        assert list(regions.anti_dominating_region(g33, 2)) == [0, 1]


class TestPartitionDominance:
    def test_strict_on_every_axis(self, g33):
        assert regions.partition_dominates(g33, 0, 8)
        assert regions.partition_dominates(g33, 0, 4)
        assert not regions.partition_dominates(g33, 0, 1)  # shares a row
        assert not regions.partition_dominates(g33, 4, 5)

    def test_irreflexive(self, g33):
        for i in range(9):
            assert not regions.partition_dominates(g33, i, i)

    def test_implies_tuple_dominance(self, rng):
        """Lemma 1: any tuple of pi dominates all tuples of pj."""
        from repro.core.dominance import dominates

        g = Grid.unit(3, 2)
        data = rng.random((300, 2))
        cells = g.cell_indices(data)
        for i, j in itertools.permutations(range(9), 2):
            if not regions.partition_dominates(g, i, j):
                continue
            for a in data[cells == i][:5]:
                for b in data[cells == j][:5]:
                    assert dominates(a, b)


class TestADRSemantics:
    def test_membership_function_matches_enumeration(self, g33):
        for p in range(9):
            enumerated = set(regions.anti_dominating_region(g33, p))
            for q in range(9):
                assert regions.in_anti_dominating_region(g33, q, p) == (
                    q in enumerated
                )

    def test_self_never_in_adr(self, g33):
        for p in range(9):
            assert not regions.in_anti_dominating_region(g33, p, p)

    def test_adr_size_closed_form(self):
        g = Grid.unit(4, 3)
        for p in range(g.num_partitions):
            assert regions.adr_size(g, p) == len(
                list(regions.anti_dominating_region(g, p))
            )

    def test_dr_size_closed_form(self):
        g = Grid.unit(4, 3)
        for p in range(g.num_partitions):
            assert regions.dr_size(g, p) == len(
                list(regions.dominating_region(g, p))
            )

    def test_adr_contains_every_possible_dominator(self, rng):
        """A tuple can only be dominated from its cell or its ADR."""
        from repro.core.dominance import dominates

        g = Grid.unit(3, 3)
        data = rng.random((200, 3))
        cells = g.cell_indices(data)
        for i in range(50):
            for j in range(200):
                if dominates(data[j], data[i]):
                    assert cells[j] == cells[i] or regions.in_anti_dominating_region(
                        g, int(cells[j]), int(cells[i])
                    )


class TestStrictlyDominatedMask:
    def test_matches_pairwise_definition(self, rng):
        g = Grid.unit(4, 2)
        occupied = rng.random(16) < 0.4
        mask = regions.strictly_dominated_mask(g, occupied)
        for j in range(16):
            expect = any(
                occupied[i] and regions.partition_dominates(g, i, j)
                for i in range(16)
            )
            assert mask[j] == expect

    def test_higher_dimensions(self, rng):
        g = Grid.unit(3, 4)
        occupied = rng.random(g.num_partitions) < 0.3
        mask = regions.strictly_dominated_mask(g, occupied)
        for j in range(g.num_partitions):
            expect = any(
                occupied[i] and regions.partition_dominates(g, i, j)
                for i in range(g.num_partitions)
            )
            assert mask[j] == expect

    def test_length_validated(self):
        with pytest.raises(ValueError):
            regions.strictly_dominated_mask(Grid.unit(3, 2), np.zeros(5, bool))


class TestMaximumPartitions:
    def test_paper_figure6(self):
        """Non-empty {p1,p2,p3,p4,p6}: p2, p4, p6 are maximum."""
        g = Grid.unit(3, 2)
        occupied = np.zeros(9, dtype=bool)
        occupied[[1, 2, 3, 4, 6]] = True
        assert regions.maximum_partitions(g, occupied).tolist() == [2, 4, 6]

    def test_single_occupied_cell_is_maximum(self):
        g = Grid.unit(3, 2)
        occupied = np.zeros(9, dtype=bool)
        occupied[4] = True
        assert regions.maximum_partitions(g, occupied).tolist() == [4]

    def test_matches_definition6(self, rng):
        g = Grid.unit(3, 3)
        occupied = rng.random(27) < 0.4
        maxima = set(regions.maximum_partitions(g, occupied).tolist())
        present = np.flatnonzero(occupied)
        for p in present:
            in_someones_adr = any(
                regions.in_anti_dominating_region(g, int(p), int(q))
                for q in present
            )
            assert (int(p) in maxima) == (not in_someones_adr)

    def test_empty_occupancy(self):
        g = Grid.unit(3, 2)
        assert regions.maximum_partitions(g, np.zeros(9, bool)).shape == (0,)

    def test_length_validated(self):
        with pytest.raises(ValueError):
            regions.maximum_partitions(Grid.unit(3, 2), np.zeros(4, bool))
