"""Unit tests for the CFG builder and the forward dataflow engine.

These drive :mod:`repro.check.cfg` and :mod:`repro.check.dataflow`
directly with tiny hand-rolled lattices, pinning the structural
contracts the deep rules (REP008-REP011) lean on: branch joins, loop
back edges, ``finally`` inlining on jump paths, the dedicated raise
exit, exceptional edges delivering in-states, and branch-edge
refinement.
"""

import ast
import textwrap

import pytest

from repro.check.cfg import TestExpr as BranchTest
from repro.check.cfg import WithEnter, WithExit, build_cfg
from repro.check.dataflow import Lattice, run_forward


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    return build_cfg(fn)


def blocks_with(cfg, predicate):
    return [
        block
        for block in cfg.blocks.values()
        if any(predicate(step) for step in block.steps)
    ]


class MayReach(Lattice):
    """May-analysis: the set of line numbers some path has executed."""

    def entry_state(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, step, state):
        return state | {step.lineno}


class MustReach(MayReach):
    """Must-analysis: lines executed on *every* path reaching a point."""

    def join(self, a, b):
        return a & b


class DefinedNames(Lattice):
    """Must-defined simple names; exercises exceptional-edge delivery."""

    def entry_state(self):
        return frozenset()

    def join(self, a, b):
        return a & b

    def transfer(self, step, state):
        if isinstance(step, ast.Assign):
            names = {
                t.id for t in step.targets if isinstance(t, ast.Name)
            }
            return state | names
        return state


class WithDepth(Lattice):
    """Counts nesting of managed regions via the with pseudo-steps."""

    def entry_state(self):
        return 0

    def join(self, a, b):
        assert a == b, "with-depth must agree at joins"
        return a

    def transfer(self, step, state):
        if isinstance(step, WithEnter):
            return state + 1
        if isinstance(step, WithExit):
            return state - 1
        return state


class Polarity(Lattice):
    """Identity transfer; refine records which branch edge was taken."""

    def entry_state(self):
        return "start"

    def join(self, a, b):
        return a if a == b else "both"

    def transfer(self, step, state):
        return state

    def refine(self, test, branch, state):
        return "T" if branch else "F"


class NeverConverges(Lattice):
    def entry_state(self):
        return 0

    def join(self, a, b):
        return max(a, b) + 1

    def transfer(self, step, state):
        return state

    def equal(self, a, b):
        return False


class TestStructure:
    def test_linear_body_reaches_exit_with_every_line(self):
        cfg = cfg_of(
            """
            def f(x):
                a = x + 1
                b = a * 2
                return b
            """
        )
        result = run_forward(cfg, MayReach())
        assert result.exit_state() == frozenset({3, 4, 5})

    def test_if_join_may_and_must(self):
        src = """
            def f(cond):
                if cond:
                    a = 1
                else:
                    b = 2
                c = 3
                return c
            """
        cfg = cfg_of(src)
        may = run_forward(cfg, MayReach()).exit_state()
        must = run_forward(cfg, MustReach()).exit_state()
        assert {4, 6} <= may  # both arms are reachable
        assert 4 not in must and 6 not in must  # neither is guaranteed
        assert {3, 7, 8} <= must  # test and join are

    def test_early_return_joins_at_exit(self):
        cfg = cfg_of(
            """
            def f(cond):
                if cond:
                    return 1
                tail = 2
                return tail
            """
        )
        must = run_forward(cfg, MustReach()).exit_state()
        assert 5 not in must  # skipped by the early return path
        assert 3 in must

    def test_while_has_back_edge_and_terminates(self):
        cfg = cfg_of(
            """
            def f(n):
                while n > 0:
                    n = n - 1
                return n
            """
        )
        heads = blocks_with(cfg, lambda s: isinstance(s, BranchTest))
        assert len(heads) == 1
        head = heads[0].bid
        assert any(e.dst == head for e in cfg.edges if e.src != cfg.entry)
        result = run_forward(cfg, MayReach())  # fixed point must converge
        assert 4 in result.exit_state()

    def test_for_binds_loop_variable_synthetically(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    use(item)
                return None
            """
        )
        binds = blocks_with(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and isinstance(s.targets[0], ast.Name)
            and s.targets[0].id == "item",
        )
        assert binds, "loop variable binding must surface as an Assign"

    def test_finally_is_inlined_on_the_return_path(self):
        cfg = cfg_of(
            """
            def f(work):
                try:
                    return work()
                finally:
                    release()
            """
        )
        must = run_forward(cfg, MustReach()).exit_state()
        assert 6 in must, "finally body must run before the return exits"

    def test_finally_is_copied_for_break_and_continue(self):
        cfg = cfg_of(
            """
            def f(jobs):
                for job in jobs:
                    try:
                        if job.stop:
                            break
                        continue
                    finally:
                        log(job)
                return None
            """
        )
        copies = blocks_with(
            cfg,
            lambda s: isinstance(s, ast.Expr) and s.lineno == 9,
        )
        assert len(copies) == 2  # one inlined copy per jump kind

    def test_raise_routes_to_the_raise_exit_only(self):
        cfg = cfg_of(
            """
            def f(cond):
                if cond:
                    raise ValueError("no")
                return 0
            """
        )
        assert cfg.preds(cfg.raise_exit), "raise path must be recorded"
        must = run_forward(cfg, MustReach()).exit_state()
        # The non-exceptional exit never saw the raise line.
        assert 4 not in must and 5 in must

    def test_dead_code_after_return_stays_unreachable(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                ghost = 2
            """
        )
        result = run_forward(cfg, MayReach())
        ghost_blocks = blocks_with(
            cfg, lambda s: isinstance(s, ast.Assign)
        )
        assert ghost_blocks
        assert result.block_in(ghost_blocks[0].bid) is None

    def test_with_pseudo_steps_bracket_the_body(self):
        cfg = cfg_of(
            """
            def f(lock):
                with lock:
                    body()
                after()
                return None
            """
        )
        result = run_forward(cfg, WithDepth())
        for block in cfg.blocks.values():
            for step, state in result.step_states(block.bid):
                if isinstance(step, ast.Expr):
                    expected = 1 if step.lineno == 4 else 0
                    assert state == expected
        assert result.exit_state() == 0


class TestEngine:
    def test_exceptional_edges_deliver_the_in_state(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                try:
                    b = 2
                    c = 3
                except KeyError:
                    recover = 9
                return a
            """
        )
        result = run_forward(cfg, DefinedNames())
        handler = blocks_with(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and isinstance(s.targets[0], ast.Name)
            and s.targets[0].id == "recover",
        )[0]
        state = result.block_in(handler.bid)
        # The exception may fire before b/c were bound; only the
        # pre-try state is guaranteed inside the handler.
        assert "a" in state
        assert "b" not in state and "c" not in state

    def test_refine_narrows_along_branch_edges(self):
        cfg = cfg_of(
            """
            def f(cond):
                if cond:
                    then = 1
                else:
                    other = 2
                return None
            """
        )
        result = run_forward(cfg, Polarity())
        then_block = blocks_with(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and s.targets[0].id == "then",
        )[0]
        else_block = blocks_with(
            cfg,
            lambda s: isinstance(s, ast.Assign)
            and s.targets[0].id == "other",
        )[0]
        assert result.block_in(then_block.bid) == "T"
        assert result.block_in(else_block.bid) == "F"
        assert result.exit_state() == "both"

    def test_step_states_replay_matches_block_out(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
                return b
            """
        )
        result = run_forward(cfg, MayReach())
        for block in cfg.blocks.values():
            states = list(result.step_states(block.bid))
            if not states:
                continue
            last_step, last_in = states[-1]
            lattice = MayReach()
            assert result.block_out(block.bid) == lattice.transfer(
                last_step, last_in
            )

    def test_non_converging_lattice_fails_loudly(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    n = step(n)
                return n
            """
        )
        with pytest.raises(RuntimeError):
            run_forward(cfg, NeverConverges())
