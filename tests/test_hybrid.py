"""The hybrid GPSRS/GPMRS auto-switch (the paper's future work)."""

import numpy as np
import pytest

from repro.algorithms.base import RunEnvironment
from repro.algorithms.hybrid import HybridGridSkyline
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster


class TestDecision:
    def test_small_skyline_picks_gpsrs(self):
        data = generate("correlated", 1000, 3, seed=1)
        result = HybridGridSkyline().compute(data)
        assert result.artifacts["hybrid_delegate"] == "mr-gpsrs"

    def test_large_skyline_picks_gpmrs(self):
        data = generate("anticorrelated", 1000, 5, seed=1)
        result = HybridGridSkyline().compute(data)
        assert result.artifacts["hybrid_delegate"] == "mr-gpmrs"

    def test_fraction_estimate_monotone_in_hardness(self):
        hybrid = HybridGridSkyline()
        easy = hybrid.estimate_skyline_fraction(
            generate("correlated", 2000, 4, seed=2)
        )
        hard = hybrid.estimate_skyline_fraction(
            generate("anticorrelated", 2000, 4, seed=2)
        )
        assert easy < hard

    def test_reducer_scaling(self):
        env = RunEnvironment(cluster=SimulatedCluster(num_nodes=13))
        hybrid = HybridGridSkyline(threshold=0.1)
        low = hybrid.choose_num_reducers(0.1, env)
        high = hybrid.choose_num_reducers(0.9, env)
        assert low == 13
        assert high == 26
        assert low <= hybrid.choose_num_reducers(0.3, env) <= high

    def test_empty_data_fraction_zero(self):
        assert HybridGridSkyline().estimate_skyline_fraction(
            np.empty((0, 3))
        ) == 0.0


class TestCorrectness:
    @pytest.mark.parametrize(
        "distribution", ["independent", "anticorrelated", "correlated"]
    )
    def test_matches_oracle(self, oracle, distribution):
        data = generate(distribution, 300, 3, seed=6)
        result = HybridGridSkyline().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_result_carries_hybrid_name(self, rng):
        result = HybridGridSkyline().compute(rng.random((100, 3)))
        assert result.algorithm == "mr-hybrid"
        assert "hybrid_estimated_fraction" in result.artifacts

    def test_deterministic_sampling(self, rng):
        data = rng.random((3000, 3))
        a = HybridGridSkyline().estimate_skyline_fraction(data)
        b = HybridGridSkyline().estimate_skyline_fraction(data)
        assert a == b


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ValidationError):
            HybridGridSkyline(threshold=0.0)
        with pytest.raises(ValidationError):
            HybridGridSkyline(threshold=1.5)

    def test_sample_size(self):
        with pytest.raises(ValidationError):
            HybridGridSkyline(sample_size=2)
