"""The repro-skyline command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.datasets import LabelledDataset, save_csv
from repro.data.generators import independent


class TestList:
    def test_lists_algorithms_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mr-gpmrs" in out and "fig7" in out

    def test_lists_serve_workloads(self, capsys):
        from repro.serve import SERVE_WORKLOADS

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "serve workloads:" in out
        for name in SERVE_WORKLOADS:
            assert name in out


class TestCompute:
    def test_synthetic_workload(self, capsys):
        code = main(
            [
                "compute",
                "--distribution",
                "anticorrelated",
                "-c",
                "300",
                "-d",
                "3",
                "--algorithm",
                "mr-gpmrs",
                "--num-reducers",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skyline of 300 x 3" in out
        assert "simulated runtime" in out

    def test_csv_input_with_prefs(self, capsys, tmp_path):
        path = str(tmp_path / "pts.csv")
        save_csv(
            path,
            LabelledDataset(
                values=[[1.0, 9.0], [2.0, 1.0], [3.0, 10.0]],
                columns=("cost", "quality"),
            ),
        )
        code = main(
            [
                "compute",
                "--input",
                path,
                "--algorithm",
                "sfs",
                "--prefs",
                "min,max",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "has 2 tuples" in out  # rows 0 and 2 dominate on max-quality

    def test_npy_input(self, capsys, tmp_path):
        path = str(tmp_path / "pts.npy")
        np.save(path, independent(100, 2, seed=1))
        assert main(["compute", "--input", path, "--algorithm", "bnl"]) == 0

    def test_show_truncation(self, capsys):
        main(
            [
                "compute",
                "--distribution",
                "anticorrelated",
                "-c",
                "400",
                "-d",
                "4",
                "--algorithm",
                "sfs",
                "--show",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "more" in out

    def test_error_reported_cleanly(self, capsys):
        code = main(
            ["compute", "--input", "/nonexistent/never.csv"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExperiment:
    def test_quick_fig10(self, capsys):
        code = main(
            [
                "experiment",
                "fig10",
                "--quick",
                "--scale",
                "0.002",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out and "reducers" in out

    def test_ablation_runs(self, capsys):
        code = main(
            ["experiment", "ablation-merging", "--scale", "0.002"]
        )
        assert code == 0
        assert "merging" in capsys.readouterr().out


class TestCompare:
    def test_agreement_table(self, capsys):
        code = main(
            [
                "compare",
                "-c",
                "500",
                "-d",
                "3",
                "--algorithms",
                "mr-gpsrs,mr-gpmrs,sky-mr",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "agrees" in out
        assert out.count("yes") == 3
        assert "NO" not in out


class TestGantt:
    def test_renders_pipeline(self, capsys):
        code = main(
            ["gantt", "-c", "500", "-d", "3", "--width", "32", "--nodes", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bitstring" in out and "gpmrs-skyline" in out
        assert "map-slot-0" in out and "shuffle" in out


class TestExperimentCSV:
    def test_csv_flag(self, capsys, tmp_path):
        path = str(tmp_path / "fig10.csv")
        code = main(
            [
                "experiment",
                "fig10",
                "--quick",
                "--scale",
                "0.002",
                "--csv",
                path,
            ]
        )
        assert code == 0
        assert "paper-claim verdicts" in capsys.readouterr().out
        import os

        assert os.path.exists(path)


class TestExperimentPlot:
    def test_plot_flag_renders_charts(self, capsys):
        code = main(
            [
                "experiment",
                "fig10",
                "--quick",
                "--scale",
                "0.002",
                "--plot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "o=mr-gpmrs" in out


class TestTelemetryExport:
    def _compute(self, tmp_path, *extra):
        tmp_path.mkdir(parents=True, exist_ok=True)
        trace = str(tmp_path / "trace.json")
        report = str(tmp_path / "report.json")
        code = main(
            [
                "compute",
                "--distribution",
                "anticorrelated",
                "-c",
                "300",
                "-d",
                "3",
                "--algorithm",
                "mr-gpmrs",
                "--nodes",
                "3",
                "--trace-out",
                trace,
                "--report-out",
                report,
                *extra,
            ]
        )
        return code, trace, report

    def test_artifacts_written_and_valid(self, capsys, tmp_path):
        import json

        from repro.obs.schema import validate_chrome_trace, validate_report

        code, trace, report = self._compute(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "report written" in out
        with open(trace) as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        with open(report) as handle:
            assert validate_report(json.load(handle)) == []

    def test_report_counters_match_a_direct_run(self, capsys, tmp_path):
        import json

        from repro import skyline
        from repro.data.generators import generate
        from repro.mapreduce.cluster import SimulatedCluster

        code, _, report_path = self._compute(tmp_path)
        assert code == 0
        capsys.readouterr()
        with open(report_path) as handle:
            report = json.load(handle)
        result = skyline(
            generate("anticorrelated", 300, 3, seed=0),
            algorithm="mr-gpmrs",
            cluster=SimulatedCluster(num_nodes=3),
        )
        assert report["counters"] == result.stats.counters().as_dict()

    def test_render_single_report(self, capsys, tmp_path):
        code, _, report = self._compute(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main(["report", report]) == 0
        out = capsys.readouterr().out
        assert "mr-gpmrs" in out and "counters:" in out

    def test_diff_identical_runs_exits_zero(self, capsys, tmp_path):
        code, _, first = self._compute(tmp_path / "a")
        assert code == 0
        code, _, second = self._compute(tmp_path / "b")
        assert code == 0
        capsys.readouterr()
        assert main(["report", first, second]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_different_runs_exits_one(self, capsys, tmp_path):
        code, _, first = self._compute(tmp_path / "a")
        assert code == 0
        code, _, second = self._compute(tmp_path / "b", "--seed", "1")
        assert code == 0
        capsys.readouterr()
        assert main(["report", first, second]) == 1
        out = capsys.readouterr().out
        assert "difference" in out

    def test_diff_rejects_more_than_two(self, capsys, tmp_path):
        code, _, report = self._compute(tmp_path)
        assert code == 0
        capsys.readouterr()
        assert main(["report", report, report, report]) == 2

    def test_parallel_engine_report_diffs_clean(self, capsys, tmp_path):
        """The acceptance property end to end: a threads-engine run
        diffs clean against serial except the declared engine name."""
        code, _, serial = self._compute(tmp_path / "serial")
        assert code == 0
        code, _, threads = self._compute(
            tmp_path / "threads", "--engine", "threads", "--workers", "4"
        )
        assert code == 0
        capsys.readouterr()
        assert main(["report", serial, threads]) == 1
        out = capsys.readouterr().out
        assert "1 difference(s):" in out
        assert "config.engine" in out


class TestListCounters:
    def test_counters_flag_prints_vocabulary(self, capsys):
        assert main(["list", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "mr metrics:" in out and "obs metrics:" in out
        assert "mr.shuffle_bytes" in out
        assert "obs.tuple_compares_per_task" in out
        assert "[bytes]" in out and "histogram" in out

    def test_plain_list_omits_vocabulary(self, capsys):
        assert main(["list"]) == 0
        assert "metrics:" not in capsys.readouterr().out

    def test_serve_counters_are_documented(self, capsys):
        assert main(["list", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "serve metrics:" in out
        assert "serve.cache_hits" in out
        assert "serve.queries_shed" in out
        assert "serve.query_latency_s" in out


class TestServe:
    def test_replays_a_workload(self, capsys):
        code = main(
            ["serve", "read-heavy", "--seed", "3", "--scale", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve workload 'read-heavy'" in out
        assert "cache hit rate" in out
        assert "throughput" in out

    def test_compare_prints_the_ratio(self, capsys):
        code = main(
            [
                "serve",
                "mixed-anticorrelated",
                "--seed",
                "3",
                "--scale",
                "0.25",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy=delta" in out and "policy=recompute" in out
        assert "more queries per" in out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "nope"])

    def test_multi_tenant_workload_prints_per_tenant_lines(self, capsys):
        code = main(
            ["serve", "flash-crowd", "--seed", "3", "--scale", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant t0:" in out
        assert "served" in out and "shed" in out

    def test_tenants_flag_overrides_the_count(self, capsys):
        code = main(
            [
                "serve",
                "read-heavy",
                "--seed",
                "3",
                "--scale",
                "0.25",
                "--tenants",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant t0:" in out
        assert "tenant t2:" in out


class TestServeObservability:
    def test_trace_and_report_out_write_valid_artifacts(
        self, capsys, tmp_path
    ):
        import json

        from repro.obs import validate_chrome_trace, validate_report

        trace_path = tmp_path / "serve-trace.json"
        report_path = tmp_path / "serve-report.json"
        code = main(
            [
                "serve",
                "flash-crowd",
                "--seed",
                "3",
                "--scale",
                "0.25",
                "--trace-out",
                str(trace_path),
                "--report-out",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slo latency:" in out and "slo availability:" in out
        assert "trace written" in out and "report written" in out
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        report = json.loads(report_path.read_text())
        assert validate_report(report) == []
        assert report["kind"] == "serve"
        assert report["config"]["workload"] == "flash-crowd"

    def test_trace_out_with_shards_implies_a_fleet_trace(
        self, capsys, tmp_path
    ):
        import json

        trace_path = tmp_path / "fleet-trace.json"
        code = main(
            [
                "serve",
                "flash-crowd",
                "--seed",
                "3",
                "--scale",
                "0.25",
                "--shards",
                "2",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert names == {"serve time", "fleet time"}
        tracks = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert {"worker-0", "worker-1"} <= tracks


class TestListTenants:
    def test_list_marks_multi_tenant_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tenants=6" in out  # flash-crowd
        assert "shape=flash-crowd" in out
        assert "quota=0.25" in out
