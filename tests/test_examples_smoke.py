"""Every example script must run cleanly end to end.

Examples are executed in-process with a trimmed workload size via
monkeypatching where needed; failures here mean the documented
walkthroughs have rotted.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_all_examples_discovered():
    assert "quickstart.py" in EXAMPLES
    assert "serve_demo.py" in EXAMPLES
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = Path(__file__).parent.parent / "examples" / script
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
