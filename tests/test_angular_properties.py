"""Property-based tests for angular partitioning and the work model."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms.mr_angle import (
    angular_partition_ids,
    hyperspherical_angles,
    sectors_for_target,
)


def point_arrays(max_rows=30, max_dims=5):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.integers(2, max_dims)),
        elements=st.floats(0.0, 1.0, width=32),
    )


class TestAngularProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=point_arrays(), sectors=st.integers(1, 6))
    def test_every_point_gets_a_partition(self, data, sectors):
        ids = angular_partition_ids(data, np.zeros(data.shape[1]), sectors)
        d = data.shape[1]
        assert (ids >= 0).all()
        assert (ids < sectors ** (d - 1)).all()

    @settings(max_examples=60, deadline=None)
    @given(data=point_arrays())
    def test_angles_in_first_quadrant(self, data):
        angles = hyperspherical_angles(data, np.zeros(data.shape[1]))
        assert (angles >= -1e-12).all()
        assert (angles <= np.pi / 2 + 1e-9).all()

    @settings(max_examples=40, deadline=None)
    @given(
        data=point_arrays(max_rows=10),
        scale=st.floats(0.25, 8.0),
        sectors=st.integers(1, 5),
    )
    def test_partition_scale_invariance(self, data, scale, sectors):
        """Rays from the origin stay in one angular partition."""
        assume(np.all(data > 1e-6))
        a = angular_partition_ids(data, np.zeros(data.shape[1]), sectors)
        b = angular_partition_ids(
            data * scale, np.zeros(data.shape[1]), sectors
        )
        assert np.array_equal(a, b)

    @settings(max_examples=40, deadline=None)
    @given(target=st.integers(1, 10_000), d=st.integers(2, 10))
    def test_sectors_for_target_close(self, target, d):
        q = sectors_for_target(target, d)
        assert q >= 1
        # q is the rounded (d-1)-th root: q-1 and q+1 bracket the target
        assert (q - 1) ** (d - 1) <= target or q == 1
