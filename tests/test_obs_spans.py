"""Spans, the wall-clock tracer, the Chrome-trace export, and metrics."""

import json

import pytest

from repro import skyline
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.mapreduce.trace import schedule_spans
from repro.obs.events import (
    EventBus,
    JobEnd,
    JobStart,
    PipelineEnd,
    PipelineStart,
    TaskAttemptEnd,
    TaskAttemptStart,
)
from repro.obs.metrics import (
    DECADE_BOUNDS,
    G_SKYLINE_SIZE,
    H_ATTEMPT_DURATION,
    H_SHUFFLE_PARTITION_RECORDS,
    H_TUPLE_COMPARES_PER_TASK,
    METRICS,
    Histogram,
    MetricsCollector,
    MetricSpec,
    documented_metrics,
)
from repro.obs.schema import validate_chrome_trace
from repro.obs.spans import (
    Span,
    chrome_trace,
    span_columns,
    render_span_rows,
    write_chrome_trace,
)
from repro.obs.tracer import SpanTracer

CLUSTER = SimulatedCluster(num_nodes=3)


def _observed_run(engine_cls, **engine_kw):
    bus = EventBus()
    tracer = bus.subscribe(SpanTracer())
    collector = bus.subscribe(MetricsCollector())
    data = generate("anticorrelated", 250, 3, seed=7)
    result = skyline(
        data,
        algorithm="mr-gpmrs",
        cluster=CLUSTER,
        engine=engine_cls(bus=bus, **engine_kw),
    )
    return result, tracer, collector


class TestSpanColumns:
    def test_half_open_boundary(self):
        # A task ending at t and one starting at t never share a column.
        assert span_columns(0.0, 1.0, 2.0, 8) == (0, 3)
        assert span_columns(1.0, 2.0, 2.0, 8) == (4, 7)

    def test_tiny_span_still_occupies_its_cell(self):
        first, last = span_columns(0.999, 1.0, 8.0, 8)
        assert first == last == 0

    def test_span_validates_ordering(self):
        with pytest.raises(ValidationError):
            Span(name="bad", track="t", start_s=2.0, end_s=1.0)


class TestRenderSpanRows:
    def test_adjacent_spans_do_not_overdraw(self):
        spans = [
            Span(name="a", track="slot", start_s=0.0, end_s=1.0),
            Span(
                name="b",
                track="slot",
                start_s=1.0,
                end_s=2.0,
                outcome="failed",
            ),
        ]
        (row,) = render_span_rows(spans, ["slot"], total_s=2.0, width=8)
        assert row.endswith("|####xxxx|")

    def test_zero_duration_span_skipped(self):
        spans = [Span(name="instant", track="t", start_s=1.0, end_s=1.0)]
        (row,) = render_span_rows(spans, ["t"], total_s=2.0, width=8)
        assert row.endswith("|        |")

    def test_width_validated(self):
        with pytest.raises(ValidationError):
            render_span_rows([], [], total_s=1.0, width=4)


class TestChromeTrace:
    def _spans(self):
        return {
            "simulated": [
                Span(name="map-0000", track="map-slot-0", start_s=0.0, end_s=1.5),
                Span(
                    name="shuffle",
                    track="shuffle",
                    start_s=1.5,
                    end_s=2.0,
                    category="shuffle",
                ),
            ],
            "wall": [
                Span(name="map-0000@0", track="thread-0", start_s=0.0, end_s=0.01)
            ],
        }

    def test_valid_and_loadable(self, tmp_path):
        path = str(tmp_path / "trace.json")
        payload = write_chrome_trace(path, self._spans())
        assert validate_chrome_trace(payload) == []
        with open(path) as handle:
            assert json.load(handle) == payload

    def test_two_clocks_two_processes(self):
        records = chrome_trace(self._spans())["traceEvents"]
        pids = {r["pid"] for r in records if r["ph"] == "X"}
        assert len(pids) == 2
        names = {
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names == {"simulated time", "wall time"}

    def test_microsecond_timestamps(self):
        records = chrome_trace(self._spans())["traceEvents"]
        span_record = next(
            r for r in records if r["ph"] == "X" and r["name"] == "map-0000"
        )
        assert span_record["ts"] == 0.0
        assert span_record["dur"] == pytest.approx(1.5e6)

    def test_validator_flags_unnamed_lanes(self):
        payload = {
            "traceEvents": [
                {"name": "t", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1}
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("process_name" in p for p in problems)

    def test_end_to_end_both_clocks(self, tmp_path):
        result, tracer, _ = _observed_run(SerialEngine)
        payload = write_chrome_trace(
            str(tmp_path / "trace.json"),
            {
                "simulated": schedule_spans(CLUSTER, result.stats.jobs),
                "wall": tracer.wall_spans(),
            },
        )
        assert validate_chrome_trace(payload) == []


class TestScheduleSpans:
    def test_jobs_laid_out_back_to_back(self):
        result, _, _ = _observed_run(SerialEngine)
        spans = schedule_spans(CLUSTER, result.stats.jobs)
        by_job = {}
        for span in spans:
            job = span.args["job"]
            lo, hi = by_job.get(job, (span.start_s, span.end_s))
            by_job[job] = (min(lo, span.start_s), max(hi, span.end_s))
        windows = [by_job[j.job_name] for j in result.stats.jobs]
        assert windows[0][0] == 0.0
        for (_, prev_end), (start, _) in zip(windows, windows[1:]):
            assert start == pytest.approx(prev_end)


class TestSpanTracer:
    def test_real_run_spans(self):
        result, tracer, _ = _observed_run(SerialEngine)
        spans = tracer.wall_spans()
        by_category = {}
        for span in spans:
            by_category.setdefault(span.category, []).append(span)
        assert len(by_category["pipeline"]) == 1
        assert len(by_category["job"]) == len(result.stats.jobs)
        tasks = sum(
            j.num_map_tasks + j.num_reduce_tasks for j in result.stats.jobs
        )
        assert len(by_category["task"]) == tasks
        # shuffle markers: one per job
        markers = [s for s in by_category["marker"] if s.name == "shuffle"]
        assert len(markers) == len(result.stats.jobs)

    def test_thread_engine_uses_thread_tracks(self):
        _, tracer, _ = _observed_run(ThreadPoolEngine, max_workers=4)
        task_tracks = {
            s.track for s in tracer.wall_spans() if s.category == "task"
        }
        assert task_tracks and all(t.startswith("thread-") for t in task_tracks)

    def test_process_engine_uses_replay_lanes(self):
        result, tracer, _ = _observed_run(ProcessPoolEngine, max_workers=2)
        task_spans = [
            s for s in tracer.wall_spans() if s.category == "task"
        ]
        assert task_spans
        assert all(s.track.startswith("replay/") for s in task_spans)
        # back-to-back within each lane
        by_track = {}
        for span in task_spans:
            by_track.setdefault(span.track, []).append(span)
        for spans in by_track.values():
            for prev, nxt in zip(spans, spans[1:]):
                assert nxt.start_s == pytest.approx(prev.end_s)

    def test_speculative_racers_get_distinct_spans(self):
        tracer = SpanTracer()
        bus = EventBus()
        bus.subscribe(tracer)
        bus.emit(PipelineStart(algorithm="demo"))
        bus.emit(JobStart(job="j", num_mappers=1, num_reducers=0))
        common = dict(job="j", task_id="map-0000", attempt=0)
        bus.emit(TaskAttemptStart(node=0, **common))
        bus.emit(TaskAttemptStart(node=1, speculative=True, **common))
        # the backup crashes; the straggler still finishes
        bus.emit(
            TaskAttemptEnd(
                outcome="failed", error="boom", speculative=True, **common
            )
        )
        bus.emit(TaskAttemptEnd(outcome="success", slowdown=4.0, **common))
        bus.emit(JobEnd(job="j"))
        bus.emit(PipelineEnd(algorithm="demo", jobs=1, wall_s=0.0))
        tasks = [s for s in tracer.wall_spans() if s.category == "task"]
        assert sorted(s.outcome for s in tasks) == ["failed", "success"]


class TestHistogram:
    def test_order_insensitive_summary(self):
        values = [1, 100, 3, 7, 2048, 5, 5, 0]
        a, b = Histogram("a"), Histogram("b")
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.summary() == b.summary()

    def test_summary_json_stable(self):
        hist = Histogram("h")
        for v in (1, 3, 900):
            hist.observe(v)
        summary = hist.summary()
        assert summary == json.loads(json.dumps(summary))
        assert summary["count"] == 3
        assert summary["min"] == 1 and summary["max"] == 900
        assert sum(summary["buckets"].values()) == 3

    def test_fixed_bounds(self):
        hist = Histogram("h")
        hist.observe(3)  # -> bucket 4
        hist.observe(4)  # inclusive upper bound -> bucket 4
        hist.observe(5)  # -> bucket 8
        assert hist.summary()["buckets"] == {"4": 2, "8": 1}

    def test_overflow_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(99)
        assert hist.summary()["buckets"] == {"inf": 1}

    def test_bounds_validated(self):
        with pytest.raises(ValidationError):
            Histogram("h", bounds=(2.0, 1.0))


class TestMetricsRegistry:
    def test_counters_sourced_from_counter_docs(self):
        from repro.mapreduce.counters import COUNTER_DOCS

        counter_specs = {
            s.name for s in documented_metrics() if s.kind == "counter"
        }
        assert counter_specs == set(COUNTER_DOCS)

    def test_duplicate_registration_rejected(self):
        from repro.obs.metrics import register

        existing = next(iter(METRICS))
        with pytest.raises(ValidationError):
            register(METRICS[existing])

    def test_kind_validated(self):
        with pytest.raises(ValidationError):
            MetricSpec(name="x", kind="timer", unit="s", description="")

    def test_wall_clock_metrics_flagged(self):
        assert METRICS[H_ATTEMPT_DURATION].wall_clock
        assert not METRICS[H_TUPLE_COMPARES_PER_TASK].wall_clock


class TestMetricsCollector:
    def test_populates_from_real_run(self):
        result, _, collector = _observed_run(SerialEngine)
        summaries = collector.summaries(wall_clock=False)
        tasks = sum(
            j.num_map_tasks + j.num_reduce_tasks for j in result.stats.jobs
        )
        assert summaries[H_TUPLE_COMPARES_PER_TASK]["count"] == tasks
        reducers = sum(j.num_reduce_tasks for j in result.stats.jobs)
        assert summaries[H_SHUFFLE_PARTITION_RECORDS]["count"] == reducers
        assert collector.gauge_values()[G_SKYLINE_SIZE] == len(result)

    def test_wall_clock_segregated(self):
        _, _, collector = _observed_run(SerialEngine)
        wall = collector.summaries(wall_clock=True)
        assert set(wall) == {H_ATTEMPT_DURATION}
        assert H_ATTEMPT_DURATION not in collector.summaries(wall_clock=False)

    def test_summaries_identical_across_engines(self):
        _, _, serial = _observed_run(SerialEngine)
        _, _, threads = _observed_run(ThreadPoolEngine, max_workers=4)
        _, _, processes = _observed_run(ProcessPoolEngine, max_workers=2)
        expected = serial.summaries(wall_clock=False)
        assert threads.summaries(wall_clock=False) == expected
        assert processes.summaries(wall_clock=False) == expected
        assert threads.gauge_values() == serial.gauge_values()
        assert processes.gauge_values() == serial.gauge_values()

    def test_gauge_names_validated(self):
        with pytest.raises(ValidationError):
            MetricsCollector().set_gauge("obs.not_a_gauge", 1)

    def test_duration_histogram_uses_decades(self):
        collector = MetricsCollector()
        assert collector.histograms[H_ATTEMPT_DURATION].bounds == DECADE_BOUNDS
