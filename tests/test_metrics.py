"""JobStats / PipelineStats metrics surface."""

import pytest

from repro.errors import ValidationError
from repro.mapreduce.counters import Counters
from repro.mapreduce.metrics import (
    AttemptRecord,
    JobStats,
    PipelineStats,
    TaskStats,
)
from repro.mapreduce.types import TaskId


def task(kind, index, duration=0.5, counters=None, **kw):
    defaults = dict(records_in=10, records_out=5, bytes_out=100)
    defaults.update(kw)
    return TaskStats(
        task_id=TaskId(kind, index),
        duration_s=duration,
        counters=Counters(counters or {}),
        **defaults,
    )


@pytest.fixture
def stats():
    s = JobStats(job_name="j1")
    s.map_tasks = [
        task("map", 0, duration=1.0, counters={"c": 5}),
        task("map", 1, duration=2.0, counters={"c": 9}),
    ]
    s.reduce_tasks = [task("reduce", 0, duration=3.0, counters={"c": 4})]
    s.shuffle_bytes = 1234
    return s


class TestJobStats:
    def test_counts(self, stats):
        assert stats.num_map_tasks == 2
        assert stats.num_reduce_tasks == 1

    def test_durations(self, stats):
        assert stats.map_durations() == [1.0, 2.0]
        assert stats.reduce_durations() == [3.0]
        assert stats.total_cpu_s() == pytest.approx(6.0)

    def test_max_task_counter(self, stats):
        assert stats.max_task_counter("map", "c") == 9
        assert stats.max_task_counter("reduce", "c") == 4
        assert stats.max_task_counter("map", "missing") == 0

    def test_max_task_counter_no_tasks(self):
        assert JobStats(job_name="empty").max_task_counter("map", "c") == 0

    def test_sum_task_counter(self, stats):
        assert stats.sum_task_counter("map", "c") == 14
        assert stats.sum_task_counter("reduce", "c") == 4

    def test_unknown_kind_rejected(self, stats):
        """'combine' (or a typo) used to silently read the reduce
        tasks; now it is named and rejected."""
        for method in (stats.max_task_counter, stats.sum_task_counter):
            with pytest.raises(ValidationError):
                method("combine", "c")
            with pytest.raises(ValidationError):
                method("reduce ", "c")

    def test_total_attempts_counts_history(self, stats):
        stats.map_tasks[0].attempts = [
            AttemptRecord(attempt=0, outcome="failed", error="boom"),
            AttemptRecord(attempt=1, outcome="success"),
        ]
        assert stats.total_attempts("map") == 3  # 2 + bare task
        assert stats.total_attempts("reduce") == 1
        with pytest.raises(ValidationError):
            stats.total_attempts("shuffle")


class TestTaskStatsAttempts:
    def test_bare_task_is_one_successful_attempt(self):
        t = task("map", 0)
        assert t.num_attempts == 1
        assert t.failed_attempts == 0
        assert t.speculative_attempts == 0

    def test_history_breakdown(self):
        t = task("map", 0)
        t.attempts = [
            AttemptRecord(attempt=0, outcome="failed", error="x"),
            AttemptRecord(attempt=1, outcome="killed", slowdown=4.0),
            AttemptRecord(attempt=1, outcome="speculative"),
        ]
        assert t.num_attempts == 3
        assert t.failed_attempts == 1
        assert t.speculative_attempts == 1


class TestPipelineStats:
    def make_pipeline(self, stats):
        other = JobStats(job_name="j2")
        other.map_tasks = [task("map", 0, counters={"c": 1})]
        other.shuffle_bytes = 66
        pipeline = PipelineStats(jobs=[stats, other], wall_s=1.5)
        return pipeline

    def test_job_lookup(self, stats):
        pipeline = self.make_pipeline(stats)
        assert pipeline.job("j2").shuffle_bytes == 66
        with pytest.raises(KeyError):
            pipeline.job("j3")

    def test_counters_merged(self, stats):
        # job counters live on stats.counters; simulate aggregation
        stats.counters.inc("x", 2)
        pipeline = self.make_pipeline(stats)
        pipeline.jobs[1].counters.inc("x", 3)
        assert pipeline.counters()["x"] == 5

    def test_totals(self, stats):
        pipeline = self.make_pipeline(stats)
        assert pipeline.total_shuffle_bytes() == 1234 + 66
        assert pipeline.total_cpu_s() == pytest.approx(6.5)

    def test_summary_keys(self, stats):
        pipeline = self.make_pipeline(stats)
        summary = pipeline.summary()
        assert summary["jobs"] == 2
        assert summary["wall_s"] == 1.5
        assert "simulated_s" not in summary  # not annotated -> omitted
        pipeline.simulated_s = 9.0
        assert pipeline.summary()["simulated_s"] == 9.0
