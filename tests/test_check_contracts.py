"""ContractCheckingEngine: the purity contracts, demonstrably enforced.

Each contract gets a deliberately-broken task that SerialEngine happily
(and wrongly) executes, and the contract engine must reject with a
:class:`ContractViolation`.  Clean jobs must produce byte-identical
pairs and counters to SerialEngine, and every registered algorithm must
run green under the contract engine end to end.
"""

import numpy as np
import pytest

from repro.bsp import ContractCheckingBSPEngine
from repro.check.contracts import ContractCheckingEngine, _shuffled_bucket
from repro.check.fingerprint import fingerprint
from repro.core.pointset import PointSet
from repro.core.reference import bruteforce_skyline_indices
from repro.data import generate
from repro.errors import ContractViolation, ValidationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import IdentityReducer, Mapper, Reducer
from repro.algorithms.registry import available_algorithms, make_algorithm


class EmitMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key % 2, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class MutatingMapper(Mapper):
    """Scales its input rows in place — the classic purity bug."""

    def map(self, key, value, ctx):
        value *= 2.0
        ctx.emit(key % 2, float(value.sum()))


class OrderSensitiveReducer(Reducer):
    """Emits the *first* value per key — depends on arrival order."""

    def reduce(self, key, values, ctx):
        ctx.emit(key, values[0])


class ListEmitMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key % 2, [value])


class ValueMutatingReducer(Reducer):
    """Mutates the shuffled value objects themselves while reducing."""

    def reduce(self, key, values, ctx):
        values[0].append(-1)
        ctx.emit(key, len(values))


class CacheMutatingMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.cache.get("shared").append(key)
        ctx.emit(0, value)


class UnhashableKeyMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit([key], value)


def small_job(mapper, reducer, *, values=None, cache=None, **kwargs):
    pairs = list(enumerate(values if values is not None else range(8)))
    return MapReduceJob(
        name="contract-probe",
        splits=kv_splits(pairs, 3),
        mapper_factory=mapper,
        reducer_factory=reducer,
        num_reducers=2,
        cache=cache or DistributedCache(),
        **kwargs,
    )


class TestRejections:
    def test_mutating_mapper_is_rejected(self):
        rows = [np.ones(3) for _ in range(8)]
        job = small_job(MutatingMapper, SumReducer, values=rows)
        with pytest.raises(ContractViolation, match="mutated its input split"):
            ContractCheckingEngine().run(job)

    def test_order_sensitive_reducer_is_rejected(self):
        job = small_job(EmitMapper, OrderSensitiveReducer)
        with pytest.raises(ContractViolation, match="order-sensitive"):
            ContractCheckingEngine().run(job)

    def test_value_mutating_reducer_is_rejected(self):
        job = small_job(ListEmitMapper, ValueMutatingReducer)
        with pytest.raises(ContractViolation, match="mutated its input"):
            ContractCheckingEngine().run(job)

    def test_cache_mutation_is_rejected(self):
        cache = DistributedCache({"shared": []})
        job = small_job(CacheMutatingMapper, IdentityReducer, cache=cache)
        with pytest.raises(ContractViolation, match="distributed-cache"):
            ContractCheckingEngine().run(job)

    def test_unhashable_key_is_rejected(self):
        job = small_job(UnhashableKeyMapper, IdentityReducer)
        with pytest.raises(ContractViolation, match="unhashable key"):
            ContractCheckingEngine().run(job)

    def test_nondeterministic_partitioner_is_rejected(self):
        ticks = iter(range(100))

        def jittery(key, n):
            return next(ticks) % n

        job = small_job(EmitMapper, SumReducer, partitioner=jittery)
        with pytest.raises(ContractViolation, match="nondeterministic"):
            ContractCheckingEngine().run(job)

    def test_violation_is_non_retryable_validation_error(self):
        assert issubclass(ContractViolation, ValidationError)

    def test_serial_engine_misses_all_of_it(self):
        # The point of the contract engine: these bugs run "fine" serially.
        job = small_job(EmitMapper, OrderSensitiveReducer)
        SerialEngine().run(job)


class TestCleanJobsUnchanged:
    def test_results_and_counters_match_serial(self):
        plain = SerialEngine().run(small_job(EmitMapper, SumReducer))
        checked = ContractCheckingEngine().run(small_job(EmitMapper, SumReducer))
        assert sorted(plain.all_pairs()) == sorted(checked.all_pairs())
        assert (
            plain.stats.counters.as_dict() == checked.stats.counters.as_dict()
        )

    def test_shuffle_seed_sweep_stays_clean(self):
        for seed in range(3):
            result = ContractCheckingEngine(shuffle_seed=seed).run(
                small_job(EmitMapper, SumReducer)
            )
            assert dict(result.all_pairs()) == {0: 12, 1: 16}


class TestShuffledBucket:
    def test_multiset_preserved_and_order_changed(self):
        bucket = [("a", i) for i in range(6)] + [("b", 9)]
        shuffled = _shuffled_bucket(list(bucket), seed=1)
        assert sorted(shuffled) == sorted(bucket)
        assert [k for k, _ in shuffled] == [k for k, _ in bucket]
        assert shuffled != bucket

    def test_deterministic_in_seed(self):
        bucket = [(0, i) for i in range(10)]
        assert _shuffled_bucket(list(bucket), 7) == _shuffled_bucket(
            list(bucket), 7
        )
        assert _shuffled_bucket(list(bucket), 7) != _shuffled_bucket(
            list(bucket), 8
        )


class TestFingerprint:
    def test_detects_inplace_array_mutation(self):
        arr = np.arange(6, dtype=np.float64)
        before = fingerprint(arr)
        arr[3] = -1.0
        assert fingerprint(arr) != before

    def test_canonical_mode_ignores_pointset_row_order(self):
        ids = np.array([3, 1, 2], dtype=np.int64)
        vals = np.arange(9, dtype=np.float64).reshape(3, 3)
        a = PointSet(ids, vals)
        perm = np.array([2, 0, 1])
        b = PointSet(ids[perm], vals[perm])
        assert fingerprint(a, canonical=True) == fingerprint(b, canonical=True)
        assert fingerprint(a) != fingerprint(b)

    def test_dicts_and_sets_hash_order_free(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})
        assert fingerprint({1: 2}) != fingerprint({1: 3})


class TestRealAlgorithms:
    """Every registered MapReduce algorithm honours the contracts —
    under the serial contract engine and its BSP twin alike."""

    @pytest.mark.parametrize(
        "engine_cls", [ContractCheckingEngine, ContractCheckingBSPEngine]
    )
    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_algorithm_runs_green_under_contract_engine(
        self, name, engine_cls
    ):
        data = generate("anticorrelated", 600, 3, seed=11)
        if name == "mr-bitmap":
            # MR-Bitmap requires small per-dimension domains (<= 64
            # distinct values, paper Section 2.2).
            data = np.round(data, 1)
        algorithm = make_algorithm(name)
        result = algorithm.compute(data, engine=engine_cls())
        expected = bruteforce_skyline_indices(data)
        assert sorted(result.indices.tolist()) == sorted(expected.tolist())

    def test_contract_bsp_engine_runs_green_under_faults(self):
        """The BSP contract engine stays green with a FaultPlan active:
        re-executed supersteps honour the same purity contracts."""
        from repro.mapreduce.faults import FaultPlan, RetryPolicy

        plan = FaultPlan(seed=9, fail_rate=1.0, max_failures_per_task=1)
        engine = ContractCheckingBSPEngine(
            retry=RetryPolicy(max_attempts=plan.min_attempts()),
            faults=plan,
        )
        data = generate("anticorrelated", 400, 3, seed=12)
        result = make_algorithm("mr-gpmrs").compute(data, engine=engine)
        expected = bruteforce_skyline_indices(data)
        assert sorted(result.indices.tolist()) == sorted(expected.tolist())
        assert engine.cost.rounds > 0
