"""Unit tests for the deterministic SLO monitor (repro.obs.slo).

Fixed virtual windows, burn-rate arithmetic, flight-recorder dumps on
burn trips and shed bursts, and the JSON-safe summary — all computed
from event timestamps on the virtual clock, so everything here is
exactly reproducible.
"""

import pytest

from repro.errors import ValidationError
from repro.obs.events import ServeQueryRejected, ServeQueryServed
from repro.obs.slo import (
    FlightRecorder,
    SLOMonitor,
    SLOObjective,
    default_objectives,
    default_window_s,
    exact_percentile,
)
from repro.obs.spans import Span
from repro.serve.workloads import SERVE_WORKLOADS


def _served(rid, at_s, latency_s=0.001, tenant="t0"):
    return ServeQueryServed(
        request_id=rid,
        epoch=0,
        cache_hit=False,
        latency_s=latency_s,
        result_size=1,
        tenant=tenant,
        at_s=at_s,
    )


def _rejected(rid, at_s, reason="shed", tenant="t0"):
    return ServeQueryRejected(
        request_id=rid, reason=reason, tenant=tenant, at_s=at_s
    )


def _monitor(**kw):
    kw.setdefault("window_s", 1.0)
    objectives = kw.pop(
        "objectives",
        (
            SLOObjective(name="latency", threshold_s=0.002),
            SLOObjective(
                name="availability", kind="availability", target=0.9,
                burn_threshold=5.0,
            ),
        ),
    )
    return SLOMonitor(objectives, **kw)


class TestObjectiveValidation:
    def test_latency_requires_threshold(self):
        with pytest.raises(ValidationError):
            SLOObjective(name="x", kind="latency", threshold_s=None)

    def test_target_and_kind_bounds(self):
        with pytest.raises(ValidationError):
            SLOObjective(name="x", threshold_s=1.0, target=1.0)
        with pytest.raises(ValidationError):
            SLOObjective(name="x", kind="throughput")

    def test_monitor_rejects_bad_config(self):
        good = (SLOObjective(name="a", threshold_s=1.0),)
        with pytest.raises(ValidationError):
            SLOMonitor((), window_s=1.0)
        with pytest.raises(ValidationError):
            SLOMonitor(good + good, window_s=1.0)
        with pytest.raises(ValidationError):
            SLOMonitor(good, window_s=0.0)


class TestWindowsAndBurn:
    def test_burn_is_bad_fraction_over_error_budget(self):
        monitor = _monitor(
            objectives=(
                SLOObjective(
                    name="latency", threshold_s=0.002, target=0.9,
                    burn_threshold=100.0,
                ),
            )
        )
        # Window 0: 3 good, 1 bad -> bad_fraction 0.25, budget 0.1.
        for rid in range(3):
            monitor.on_event(_served(rid, at_s=0.1 * rid))
        monitor.on_event(_served(3, at_s=0.5, latency_s=0.01))
        monitor.on_event(_served(4, at_s=1.5))  # rolls to window 1
        monitor.finalize()
        summary = monitor.summary()
        (objective,) = summary["objectives"]
        assert objective["worst_burn"] == pytest.approx(2.5)
        assert objective["worst_window"] == 0
        assert objective["burn_by_window"] == [[0, 2.5]]
        assert summary["windows_closed"] == 2

    def test_late_events_never_reopen_closed_windows(self):
        monitor = _monitor()
        monitor.on_event(_served(0, at_s=2.5))
        monitor.on_event(_served(1, at_s=0.1))  # late: counted in open win
        monitor.finalize()
        assert monitor.summary()["windows_closed"] == 1
        assert monitor.summary()["requests"]["served"] == 2

    def test_empty_windows_between_events_are_counted(self):
        monitor = _monitor()
        monitor.on_event(_served(0, at_s=0.5))
        monitor.on_event(_served(1, at_s=5.5))
        monitor.finalize()
        assert monitor.summary()["windows_closed"] == 6


class TestTripsAndDumps:
    def test_burn_trip_snapshots_the_recorder(self):
        monitor = _monitor(shed_burst=100)
        # Window 0: every request shed -> availability burn 1/0.1 = 10.
        for rid in range(5):
            monitor.on_event(_rejected(rid, at_s=0.1 * rid))
        monitor.on_event(_served(9, at_s=1.5))
        monitor.finalize()
        dumps = monitor.dumps
        assert len(dumps) == 1
        assert dumps[0]["reason"] == "burn:availability"
        assert dumps[0]["window"] == 0
        assert [e["request_id"] for e in dumps[0]["events"]] == list(range(5))

    def test_shed_burst_trips_independently_of_burn(self):
        monitor = _monitor(
            objectives=(
                SLOObjective(
                    name="availability", kind="availability", target=0.9,
                    burn_threshold=1e9,
                ),
            ),
            shed_burst=3,
        )
        for rid in range(3):
            monitor.on_event(_rejected(rid, at_s=0.2 * rid))
        monitor.on_event(_served(5, at_s=1.5))
        monitor.finalize()
        (dump,) = monitor.dumps
        assert dump["reason"] == "shed-burst"
        assert dump["sheds"] == 3

    def test_dumps_are_capped_and_suppressions_counted(self):
        monitor = _monitor(max_dumps=1, shed_burst=1)
        for window in range(3):
            monitor.on_event(_rejected(window, at_s=window + 0.5))
        monitor.finalize()
        assert len(monitor.dumps) == 1
        assert monitor.summary()["flight_recorder"]["suppressed_dumps"] >= 1

    def test_recorder_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(5):
            recorder.record({"i": i})
        assert [e["i"] for e in recorder.snapshot()] == [3, 4]


class TestDigestsAndSummary:
    def test_summary_is_deterministic_and_repeatable(self):
        def build():
            monitor = _monitor()
            for rid in range(40):
                if rid % 7 == 0:
                    monitor.on_event(_rejected(rid, at_s=rid * 0.1))
                else:
                    monitor.on_event(
                        _served(
                            rid, at_s=rid * 0.1, tenant=f"t{rid % 3}",
                            latency_s=0.0001 * rid,
                        )
                    )
            monitor.finalize()
            return monitor.summary()

        assert build() == build()

    def test_ingest_spans_keeps_only_shard_and_worker_tracks(self):
        monitor = _monitor()
        monitor.ingest_spans(
            [
                Span(name="a", track="shard-0", start_s=0.0, end_s=0.2),
                Span(name="b", track="worker-1", start_s=0.0, end_s=0.5),
                Span(name="c", track="frontend", start_s=0.0, end_s=9.0),
            ]
        )
        shards = monitor.summary()["shards"]
        assert set(shards) == {"shard-0", "worker-1"}
        assert shards["worker-1"]["busy_s"] == pytest.approx(0.5)
        assert shards["shard-0"]["max_span_s"] == pytest.approx(0.2)

    def test_finalize_is_idempotent(self):
        monitor = _monitor()
        monitor.on_event(_served(0, at_s=0.5))
        monitor.finalize()
        monitor.finalize()
        assert monitor.summary()["windows_closed"] == 1


class TestDefaults:
    def test_default_objectives_follow_the_workload_timeout(self):
        workload = SERVE_WORKLOADS["flash-crowd"]
        latency, availability = default_objectives(workload)
        assert latency.threshold_s == pytest.approx(workload.timeout_s / 2)
        assert availability.kind == "availability"

    def test_default_window_slices_the_nominal_run(self):
        workload = SERVE_WORKLOADS["flash-crowd"]
        expected = workload.num_ops * workload.mean_interarrival_s / 16.0
        assert default_window_s(workload) == pytest.approx(expected)

    def test_exact_percentile_nearest_rank(self):
        assert exact_percentile([], 0.99) == 0.0
        assert exact_percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert exact_percentile([3.0, 1.0, 2.0], 0.99) == 3.0
