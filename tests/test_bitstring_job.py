"""The MapReduce bitstring jobs (Algorithms 1-2 and Section 3.3)."""

import numpy as np
import pytest

from repro.algorithms.bitstring_job import (
    extract_bitstring,
    extract_ppd_choice,
    make_adaptive_ppd_job,
    make_bitstring_job,
    make_bounds_job,
)
from repro.errors import AlgorithmError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.splits import contiguous_splits


@pytest.fixture
def engine():
    return SerialEngine()


class TestBoundsJob:
    def test_bounds_match_numpy(self, engine, rng):
        data = rng.random((100, 3)) * 10 - 5
        result = engine.run(make_bounds_job(contiguous_splits(data, 4)))
        lows, highs = result.single_value()
        assert np.allclose(lows, data.min(axis=0))
        assert np.allclose(highs, data.max(axis=0))

    def test_empty_splits_tolerated(self, engine, rng):
        data = rng.random((3, 2))
        result = engine.run(make_bounds_job(contiguous_splits(data, 8)))
        lows, highs = result.single_value()
        assert np.allclose(lows, data.min(axis=0))
        assert np.allclose(highs, data.max(axis=0))


class TestBitstringJob:
    def test_matches_direct_construction(self, engine, rng):
        data = rng.random((300, 2))
        grid = Grid.unit(4, 2)
        job = make_bitstring_job(contiguous_splits(data, 5), grid)
        result = engine.run(job)
        got = extract_bitstring(result, grid)
        expect = Bitstring.from_data(grid, data).prune_dominated()
        assert got == expect

    def test_prune_flag_off_keeps_equation1(self, engine, rng):
        data = rng.random((300, 2))
        grid = Grid.unit(4, 2)
        job = make_bitstring_job(contiguous_splits(data, 5), grid, prune=False)
        got = extract_bitstring(engine.run(job), grid)
        assert got == Bitstring.from_data(grid, data)

    def test_mapper_count_does_not_change_result(self, engine, rng):
        data = rng.random((200, 3))
        grid = Grid.unit(3, 3)
        results = []
        for m in (1, 3, 9):
            job = make_bitstring_job(contiguous_splits(data, m), grid)
            results.append(extract_bitstring(engine.run(job), grid))
        assert results[0] == results[1] == results[2]

    def test_extract_requires_payload(self, engine, rng):
        data = rng.random((10, 2))
        grid = Grid.unit(2, 2)
        result = engine.run(make_bounds_job(contiguous_splits(data, 1)))
        with pytest.raises(AlgorithmError):
            extract_bitstring(result, grid)

    def test_shuffle_carries_packed_bitstrings(self, engine, rng):
        """Each mapper ships ~n^d/8 bytes, as Hadoop would."""
        data = rng.random((100, 2))
        grid = Grid.unit(8, 2)  # 64 cells -> 8 bytes per mapper
        job = make_bitstring_job(contiguous_splits(data, 4), grid)
        result = engine.run(job)
        assert result.stats.shuffle_bytes < 4 * (8 + 64)


class TestAdaptivePPDJob:
    def run_adaptive(self, engine, data, strategy="target", tpp=64):
        d = data.shape[1]
        bounds = (np.zeros(d), np.ones(d))
        candidates = [2, 3, 4, 5]
        job = make_adaptive_ppd_job(
            contiguous_splits(data, 4),
            bounds,
            candidates,
            data.shape[0],
            strategy=strategy,
            tpp=tpp,
        )
        return engine.run(job)

    def test_choice_and_bitstring_consistent(self, engine, rng):
        data = rng.random((400, 2))
        result = self.run_adaptive(engine, data)
        chosen, rho = extract_ppd_choice(result)
        assert chosen in (2, 3, 4, 5)
        assert set(rho) == {2, 3, 4, 5}
        grid = Grid(chosen, np.zeros(2), np.ones(2))
        got = extract_bitstring(result, grid)
        expect = Bitstring.from_data(grid, data).prune_dominated()
        assert got == expect

    def test_rho_counts_nonempty_partitions(self, engine, rng):
        data = rng.random((400, 2))
        result = self.run_adaptive(engine, data)
        _chosen, rho = extract_ppd_choice(result)
        for j, count in rho.items():
            grid = Grid(j, np.zeros(2), np.ones(2))
            assert count == Bitstring.from_data(grid, data).count()

    def test_target_tpp_drives_choice(self, engine, rng):
        data = rng.random((500, 2))
        fine = extract_ppd_choice(
            self.run_adaptive(engine, data, tpp=20)
        )[0]
        coarse = extract_ppd_choice(
            self.run_adaptive(engine, data, tpp=200)
        )[0]
        assert fine >= coarse

    def test_extract_choice_requires_payload(self, engine, rng):
        data = rng.random((10, 2))
        grid = Grid.unit(2, 2)
        result = engine.run(
            make_bitstring_job(contiguous_splits(data, 1), grid)
        )
        with pytest.raises(AlgorithmError):
            extract_ppd_choice(result)
