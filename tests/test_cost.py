"""Section 6 cost model: closed forms vs literal summations."""

import pytest

from repro.errors import ValidationError
from repro.grid import cost


class TestRhoRem:
    def test_paper_example(self):
        # 3x3 2-d grid: 3^2 - 2^2 = 5 remaining partitions.
        assert cost.rho_rem(3, 2) == 5

    def test_n1(self):
        assert cost.rho_rem(1, 4) == 1

    def test_various(self):
        assert cost.rho_rem(2, 8) == 2 ** 8 - 1
        assert cost.rho_rem(4, 3) == 64 - 27

    def test_validation(self):
        with pytest.raises(ValidationError):
            cost.rho_rem(0, 2)
        with pytest.raises(ValidationError):
            cost.rho_rem(2, 0)


class TestRhoDom:
    def test_paper_example(self):
        # p2 at 1-based coords (1, 3): 1*3 - 1 = 2 comparisons.
        assert cost.rho_dom((1, 3)) == 2

    def test_origin_partition(self):
        assert cost.rho_dom((1, 1, 1)) == 0

    def test_rejects_zero_based(self):
        with pytest.raises(ValidationError):
            cost.rho_dom((0, 2))


class TestKappa:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_closed_form_equals_bruteforce(self, n, d):
        assert cost.kappa(n, d) == cost.kappa_bruteforce(n, d)

    def test_value(self):
        # n=3, d=2: sum over (i,j) in [1,3]^2 of i*j - 1 = 36 - 9 = 27.
        assert cost.kappa(3, 2) == 27


class TestKappaSurfaces:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_each_surface_matches_bruteforce(self, n, d):
        for j in range(1, d + 1):
            assert cost.kappa_surface(n, d, j) == cost.kappa_surface_bruteforce(
                n, d, j
            ), (n, d, j)

    def test_surface_index_validated(self):
        with pytest.raises(ValidationError):
            cost.kappa_surface(3, 2, 0)
        with pytest.raises(ValidationError):
            cost.kappa_surface(3, 2, 3)

    def test_overlap_removal_shrinks_surfaces(self):
        # Later surfaces exclude overlap, so they are never larger.
        for j in range(1, 4):
            assert cost.kappa_surface(4, 4, j + 1) <= cost.kappa_surface(
                4, 4, j
            )


class TestKappaMapperReducer:
    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_mapper_closed_form(self, n, d):
        assert cost.kappa_mapper(n, d) == cost.kappa_mapper_bruteforce(n, d)

    def test_reducer_is_biggest_surface(self):
        assert cost.kappa_reducer(4, 3) == cost.kappa_surface(4, 3, 1)

    def test_reducer_leq_mapper(self):
        for n in (2, 3, 5):
            for d in (2, 3, 5, 8):
                assert cost.kappa_reducer(n, d) <= cost.kappa_mapper(n, d)

    def test_paper_shape_monotone_in_d(self):
        """The Figure 11 curves grow with dimensionality (fixed n)."""
        values = [cost.kappa_mapper(3, d) for d in range(2, 9)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_d1_degenerate(self):
        # One dimension: single surface of a single cell, 0 comparisons.
        assert cost.kappa_mapper(5, 1) == 0
        assert cost.kappa_reducer(5, 1) == 0
