"""Multi-tenant admission: weighted-fair queueing, quotas, traces.

The virtual-clock tests pin the WFQ discipline with hand-built tenant
policies (weights chosen so finish tags are easy to compute by hand);
the trace tests pin the production-shaped generators (Zipf popularity,
diurnal / flash-crowd arrivals) and their determinism; the accounting
tests pin the per-tenant counter family against the global totals.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mapreduce.counters import (
    SERVE_QUERIES,
    SERVE_QUERIES_SHED,
    SERVE_QUERIES_TIMED_OUT,
    tenant_counter,
)
from repro.obs import EventBus, EventLog, validate_events
from repro.serve import (
    ARRIVAL_SHAPES,
    DEFAULT_TENANT,
    SERVE_WORKLOADS,
    CostModel,
    QueryFrontend,
    SkylineIndex,
    TenantPolicy,
    ThreadedFrontend,
    build_serve_report,
    generate_ops,
    op_tenant,
    replay,
    serve_stream,
    tenant_name,
)
from repro.data.generators import generate

#: One virtual second per query: trivial to schedule by hand.
SLOW = CostModel(
    seconds_per_pair=0.0,
    per_result_tuple_s=0.0,
    query_base_s=1.0,
    cache_hit_s=1.0,
    mutation_base_s=0.0,
)


def small_index(**kwargs) -> SkylineIndex:
    data = generate("independent", 50, 2, seed=1)
    kwargs.setdefault("staleness_budget", 10_000)
    return SkylineIndex(data, **kwargs)


class TestTenantPolicy:
    def test_defaults_never_bind(self):
        policy = TenantPolicy()
        assert policy.weight("anything") == 1.0
        assert policy.quota_slots(8) == 8

    def test_quota_slots_floor_at_one(self):
        assert TenantPolicy(quota_fraction=0.25).quota_slots(2) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            TenantPolicy(default_weight=0.0)
        with pytest.raises(ValidationError):
            TenantPolicy(quota_fraction=0.0)
        with pytest.raises(ValidationError):
            TenantPolicy(quota_fraction=1.5)
        with pytest.raises(ValidationError):
            TenantPolicy(weights={"": 1.0})
        with pytest.raises(ValidationError):
            TenantPolicy(weights={"t0": -1.0})


class TestWeightedFairQueueing:
    def _frontend(self, policy, **kwargs):
        kwargs.setdefault("cache_capacity", 0)
        kwargs.setdefault("queue_capacity", 10)
        kwargs.setdefault("timeout_s", 100.0)
        return QueryFrontend(
            small_index(), cost_model=SLOW, tenant_policy=policy, **kwargs
        )

    def test_heavier_tenant_served_first(self):
        """Both tenants backlog while the server is busy; the 2x-weight
        tenant's finish tag is smaller, so it is served first even
        though it arrived second."""
        fe = self._frontend(TenantPolicy(weights={"gold": 2.0}))
        fe.submit_query(0.0, tenant="bronze")  # serves [0, 1); vc_bronze=1
        fe.submit_query(0.1, tenant="bronze")  # tags [1.0, 2.0)
        fe.submit_query(0.2, tenant="gold")  # tags [0.2, 0.7)
        served = sorted(
            (r for r in fe.flush() if r.status == "ok"),
            key=lambda r: r.finish_s,
        )
        assert [r.tenant for r in served] == ["bronze", "gold", "bronze"]
        # gold starts at 1.0 (arrival 0.2), bronze #2 at 2.0 (arrival 0.1)
        assert served[1].latency_s == pytest.approx(1.8)
        assert served[2].latency_s == pytest.approx(2.9)

    def test_equal_weights_interleave_fairly(self):
        """Tenant a backlogs three queries before b's one; WFQ lets b's
        first query jump a's later ones instead of waiting out the
        whole burst."""
        fe = self._frontend(TenantPolicy())
        fe.submit_query(0.0, tenant="a")  # serves [0, 1); vc_a=1
        fe.submit_query(0.1, tenant="a")  # tags [1.0, 2.0)
        fe.submit_query(0.1, tenant="a")  # tags [2.0, 3.0)
        fe.submit_query(0.2, tenant="b")  # tags [0.2, 1.2)
        served = sorted(
            (r for r in fe.flush() if r.status == "ok"),
            key=lambda r: r.finish_s,
        )
        assert [r.tenant for r in served] == ["a", "b", "a", "a"]

    def test_single_tenant_reduces_to_fifo(self):
        """With one tenant the WFQ heap is admission-ordered: the
        original FIFO timings hold exactly."""
        fe = self._frontend(TenantPolicy())
        fe.submit_query(0.0)
        fe.submit_query(0.0)
        fe.submit_query(0.5)
        responses = fe.flush()
        assert [r.status for r in responses] == ["ok", "ok", "ok"]
        assert [r.finish_s for r in responses] == [1.0, 2.0, 3.0]
        assert all(r.tenant == DEFAULT_TENANT for r in responses)

    def test_invalid_tenant_rejected(self):
        fe = self._frontend(TenantPolicy())
        with pytest.raises(ValidationError):
            fe.submit_query(0.0, tenant="")


class TestTenantQuotas:
    def test_over_quota_tenant_shed_under_global_room(self):
        """quota_fraction 0.25 of capacity 8 = 2 slots: the hog's third
        queued query sheds while the queue still has global room, and a
        polite tenant still gets in afterwards."""
        bus = EventBus()
        log = bus.subscribe(EventLog())
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=8,
            timeout_s=100.0,
            cost_model=SLOW,
            tenant_policy=TenantPolicy(quota_fraction=0.25),
            bus=bus,
        )
        fe.submit_query(0.0, tenant="hog")  # in service
        fe.submit_query(0.1, tenant="hog")  # queued (1/2)
        fe.submit_query(0.1, tenant="hog")  # queued (2/2)
        fe.submit_query(0.2, tenant="hog")  # over quota: shed
        fe.submit_query(0.2, tenant="polite")  # global room: admitted
        responses = fe.flush()
        by_tenant = {}
        for r in responses:
            by_tenant.setdefault(r.tenant, []).append(r.status)
        assert by_tenant["hog"] == ["ok", "ok", "ok", "shed"]
        assert by_tenant["polite"] == ["ok"]

        events = log.events
        validate_events(events)
        sheds = log.of_kind("serve_tenant_shed")
        assert len(sheds) == 1
        assert sheds[0].tenant == "hog"
        assert sheds[0].queued == 2
        assert sheds[0].quota_slots == 2
        quota_updates = {
            e.tenant: e for e in log.of_kind("serve_quota_update")
        }
        assert set(quota_updates) == {"hog", "polite"}
        assert quota_updates["hog"].quota_slots == 2

    def test_threaded_frontend_enforces_the_same_quota(self):
        """Submit-before-start is deterministic: the hog's queued count
        crosses its quota before any query is drained."""
        fe = ThreadedFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=8,
            timeout_s=100.0,
            tenant_policy=TenantPolicy(quota_fraction=0.25),
        )
        for _ in range(3):
            fe.submit(tenant="hog")
        fe.submit(tenant="polite")
        fe.start()
        responses = fe.stop()
        by_tenant = {}
        for r in responses:
            by_tenant.setdefault(r.tenant, []).append(r.status)
        assert sorted(by_tenant["hog"]) == ["ok", "ok", "shed"]
        assert by_tenant["polite"] == ["ok"]
        assert fe.counters[tenant_counter("hog", "shed")] == 1


class TestTenantAccounting:
    def test_per_tenant_counters_partition_the_globals(self):
        """serve.queries + serve.queries_shed + serve.queries_timed_out
        equals submissions, and each global equals the sum of its
        per-tenant family."""
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=2,
            timeout_s=1.5,
            cost_model=SLOW,
            tenant_policy=TenantPolicy(quota_fraction=0.5),
        )
        tenants = ["a", "b", "a", "c", "b", "a", "c", "a"]
        for i, t in enumerate(tenants):
            fe.submit_query(i * 0.3, tenant=t)
        fe.flush()
        counters = fe.counters
        served = counters[SERVE_QUERIES]
        shed = counters[SERVE_QUERIES_SHED]
        timed_out = counters[SERVE_QUERIES_TIMED_OUT]
        assert served + shed + timed_out == len(tenants)
        for field, total in (
            ("queries", served),
            ("shed", shed),
            ("timed_out", timed_out),
        ):
            assert (
                sum(
                    counters[tenant_counter(t, field)]
                    for t in set(tenants)
                )
                == total
            )

    def test_report_carries_per_tenant_sections(self):
        workload = SERVE_WORKLOADS["multi-tenant-diurnal"].scaled(0.25)
        stream = generate_ops(workload, seed=7)
        report, _ = serve_stream(stream)
        tenants = report["tenants"]
        assert set(tenants) <= {tenant_name(i) for i in range(workload.tenants)}
        queries = sum(1 for op in stream.ops if op[0] == "query")
        assert (
            sum(
                t["served"] + t["shed"] + t["timed_out"]
                for t in tenants.values()
            )
            == queries
        )
        assert (
            sum(t["submitted"] for t in tenants.values()) == queries
        )


class TestTraceShapes:
    def test_zipf_popularity_orders_tenants(self):
        """With skew > 0, tenant t0 must draw the most queries and the
        ranking must follow the Zipf ranks (modulo tail noise)."""
        workload = replace(
            SERVE_WORKLOADS["multi-tenant-diurnal"],
            num_ops=4000,
            tenants=4,
            tenant_skew=1.5,
        )
        stream = generate_ops(workload, seed=3)
        counts = {tenant_name(i): 0 for i in range(4)}
        for op in stream.ops:
            counts[op_tenant(op)] += 1
        assert counts["t0"] > counts["t1"] > counts["t3"]
        assert counts["t0"] > len(stream.ops) * 0.4

    def test_flash_window_concentrates_hot_tenant(self):
        """Inside the flash window the hot tenant takes ~hot_tenant_share
        of ops; outside it keeps its base Zipf share."""
        workload = replace(
            SERVE_WORKLOADS["flash-crowd"], num_ops=4000, hot_tenant_share=0.9
        )
        stream = generate_ops(workload, seed=5)
        lo, hi = workload.flash_window
        n = len(stream.ops)
        inside = [
            op_tenant(op)
            for i, op in enumerate(stream.ops)
            if lo <= i / n < hi
        ]
        outside = [
            op_tenant(op)
            for i, op in enumerate(stream.ops)
            if not lo <= i / n < hi
        ]
        hot_inside = inside.count("t0") / len(inside)
        hot_outside = outside.count("t0") / len(outside)
        assert hot_inside > 0.8
        assert hot_outside < 0.6
        assert hot_inside > hot_outside + 0.25

    def test_flash_window_accelerates_arrivals(self):
        workload = replace(SERVE_WORKLOADS["flash-crowd"], num_ops=2000)
        stream = generate_ops(workload, seed=2)
        lo, hi = workload.flash_window
        n = len(stream.ops)
        times = [op[1] for op in stream.ops]
        gaps_in = [
            times[i] - times[i - 1]
            for i in range(1, n)
            if lo <= i / n < hi
        ]
        gaps_out = [
            times[i] - times[i - 1]
            for i in range(1, n)
            if not lo <= i / n < hi
        ]
        # Mean gap inside the window shrinks by ~flash_factor.
        assert np.mean(gaps_out) / np.mean(gaps_in) > workload.flash_factor / 2

    def test_diurnal_shape_modulates_gaps(self):
        workload = replace(
            SERVE_WORKLOADS["multi-tenant-diurnal"],
            num_ops=2000,
            diurnal_amplitude=0.9,
            diurnal_cycles=1.0,
        )
        stream = generate_ops(workload, seed=4)
        times = [op[1] for op in stream.ops]
        gaps = np.array(
            [times[i] - times[i - 1] for i in range(1, len(times))]
        )
        n = len(gaps)
        # cycles=1.0: rate peaks mid-trace, so mid-trace gaps shrink.
        peak = gaps[int(n * 0.4) : int(n * 0.6)]
        trough = np.concatenate([gaps[: int(n * 0.1)], gaps[int(n * 0.9) :]])
        assert np.mean(peak) < np.mean(trough)

    def test_single_tenant_streams_keep_bare_op_tuples(self):
        """Back-compat: tenants == 1 must not change op arities or the
        RNG draw sequence of existing workloads."""
        workload = SERVE_WORKLOADS["mixed-anticorrelated"]
        stream = generate_ops(workload, seed=0)
        for op in stream.ops:
            if op[0] == "query":
                assert len(op) == 3
            elif op[0] == "insert":
                assert len(op) == 4
            else:
                assert len(op) == 3
            assert op_tenant(op) == DEFAULT_TENANT

    def test_multi_tenant_ops_carry_trailing_tenant(self):
        workload = replace(SERVE_WORKLOADS["flash-crowd"], num_ops=200)
        stream = generate_ops(workload, seed=1)
        assert any(op[0] != "query" for op in stream.ops)
        for op in stream.ops:
            assert op[-1].startswith("t")
            if op[0] == "query":
                assert len(op) == 4
            elif op[0] == "insert":
                assert len(op) == 5
            else:
                assert len(op) == 4

    def test_unknown_shape_rejected(self):
        assert set(ARRIVAL_SHAPES) == {"poisson", "diurnal", "flash-crowd"}
        workload = replace(
            SERVE_WORKLOADS["multi-tenant-diurnal"], arrival_shape="bursty"
        )
        with pytest.raises(ValidationError):
            generate_ops(workload, seed=0)


class TestMultiTenantReplay:
    @pytest.mark.parametrize("name", ["multi-tenant-diurnal", "flash-crowd"])
    def test_replay_is_deterministic(self, name):
        workload = SERVE_WORKLOADS[name].scaled(0.25)
        stream = generate_ops(workload, seed=11)
        first, _ = serve_stream(stream)
        second, _ = serve_stream(stream)
        assert first == second

    def test_replay_events_validate(self):
        workload = SERVE_WORKLOADS["flash-crowd"].scaled(0.25)
        stream = generate_ops(workload, seed=11)
        bus = EventBus()
        log = bus.subscribe(EventLog())
        serve_stream(stream, bus=bus)
        validate_events(log.events)
        assert "serve_quota_update" in set(log.kinds())
