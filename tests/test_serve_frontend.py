"""QueryFrontend: admission control, shedding, timeouts, determinism.

Virtual-clock tests pin the queueing semantics with hand-built cost
models (service times chosen so the schedule is easy to reason about);
the workload tests assert seeded end-to-end determinism; the threaded
smoke only asserts liveness and bookkeeping, never wall timings.
"""

import numpy as np
import pytest

from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.counters import (
    SERVE_QUERIES,
    SERVE_QUERIES_SHED,
    SERVE_QUERIES_TIMED_OUT,
)
from repro.obs import EventBus, EventLog, validate_events
from repro.serve import (
    SERVE_WORKLOADS,
    CostModel,
    QueryFrontend,
    SkylineIndex,
    ThreadedFrontend,
    build_serve_report,
    generate_ops,
    replay,
    run_workload,
)

#: One virtual second per query: trivial to schedule by hand.
SLOW = CostModel(
    seconds_per_pair=0.0,
    per_result_tuple_s=0.0,
    query_base_s=1.0,
    cache_hit_s=1.0,
    mutation_base_s=0.0,
)


def small_index(**kwargs) -> SkylineIndex:
    data = generate("independent", 50, 2, seed=1)
    kwargs.setdefault("staleness_budget", 10_000)
    return SkylineIndex(data, **kwargs)


class TestVirtualQueueing:
    def test_fifo_service_and_latency(self):
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=10,
            timeout_s=100.0,
            cost_model=SLOW,
        )
        fe.submit_query(0.0)  # starts 0, finishes 1
        fe.submit_query(0.0)  # starts 1, finishes 2
        fe.submit_query(0.5)  # starts 2, finishes 3
        responses = fe.flush()
        assert [r.status for r in responses] == ["ok"] * 3
        assert [r.finish_s for r in responses] == [1.0, 2.0, 3.0]
        assert responses[2].latency_s == pytest.approx(2.5)

    def test_shed_when_queue_full(self):
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=2,
            timeout_s=100.0,
            cost_model=SLOW,
        )
        # First query occupies the server for [0, 1); the next two wait;
        # the fourth finds the queue full and is shed at admission.
        for _ in range(4):
            fe.submit_query(0.1)
        responses = fe.flush()
        statuses = [r.status for r in responses]
        assert statuses == ["ok", "ok", "ok", "shed"]
        assert fe.counters[SERVE_QUERIES] == 3
        assert fe.counters[SERVE_QUERIES_SHED] == 1

    def test_timeout_when_wait_exceeds_budget(self):
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=10,
            timeout_s=1.5,
            cost_model=SLOW,
        )
        fe.submit_query(0.0)  # serves [0, 1)
        fe.submit_query(0.0)  # waits 1.0 <= 1.5: serves [1, 2)
        fe.submit_query(0.0)  # would wait 2.0 > 1.5: times out
        responses = fe.flush()
        assert [r.status for r in responses] == ["ok", "ok", "timeout"]
        assert responses[2].latency_s == pytest.approx(1.5)
        assert fe.counters[SERVE_QUERIES_TIMED_OUT] == 1

    def test_mutations_occupy_the_server(self):
        cost = CostModel(
            seconds_per_pair=0.0,
            per_result_tuple_s=0.0,
            query_base_s=1.0,
            cache_hit_s=1.0,
            mutation_base_s=5.0,
        )
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=10,
            timeout_s=100.0,
            cost_model=cost,
        )
        fe.apply_insert(0.0, [0.5, 0.5])  # server busy until 5.0
        fe.submit_query(1.0)  # starts 5.0, finishes 6.0
        (response,) = fe.flush()
        assert response.finish_s == pytest.approx(6.0)

    def test_out_of_order_times_rejected(self):
        fe = QueryFrontend(small_index())
        fe.submit_query(1.0)
        with pytest.raises(ValidationError):
            fe.submit_query(0.5)

    def test_query_sees_index_state_at_its_start_time(self):
        """A query queued behind a long service starts after a later
        mutation's timestamp — it must see the mutated index."""
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=10,
            timeout_s=100.0,
            cost_model=SLOW,
        )
        fe.submit_query(0.0)  # serves [0, 1)
        fe.submit_query(0.0)  # starts at 1.0, after the insert below
        fe.apply_insert(0.5, [0.0, 0.0], 999)  # dominates everything
        responses = fe.flush()
        assert responses[0].result.ids.tolist() != [999]
        assert responses[1].result.ids.tolist() == [999]


class TestAdmissionBoundaries:
    """The satellite bugfixes: doomed admissions and the half-open
    timeout convention (served iff wait < timeout_s)."""

    def test_doomed_query_rejected_at_admission_frees_the_slot(self):
        """A query whose earliest start is already past the wait budget
        must not occupy a queue slot: the slot stays available for a
        later in-time query."""
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=1,
            timeout_s=0.5,
            cost_model=SLOW,
        )
        fe.submit_query(0.0)  # serves [0, 1)
        fe.submit_query(0.2)  # would wait 0.8 >= 0.5: doomed, rejected now
        fe.submit_query(0.6)  # waits 0.4 < 0.5: takes the freed slot
        responses = fe.flush()
        assert [r.status for r in responses] == ["ok", "timeout", "ok"]
        # The doomed query's outcome is decided at arrival + timeout.
        assert responses[1].latency_s == pytest.approx(0.5)
        assert fe.counters[SERVE_QUERIES_SHED] == 0
        assert fe.counters[SERVE_QUERIES_TIMED_OUT] == 1

    def test_exact_timeout_wait_is_rejected_in_queue(self):
        """Half-open budget on the drain path: a mutation pushes an
        already-queued query's wait to exactly timeout_s → rejected."""
        cost = CostModel(
            seconds_per_pair=0.0,
            per_result_tuple_s=0.0,
            query_base_s=1.0,
            cache_hit_s=1.0,
            mutation_base_s=1.5,
        )
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=10,
            timeout_s=2.0,
            cost_model=cost,
        )
        fe.submit_query(0.0)  # serves [0, 1)
        fe.submit_query(0.5)  # queued: would wait 0.5 < 2.0 at admission
        fe.apply_insert(0.6, [0.5, 0.5])  # server busy until 2.5
        responses = fe.flush()
        # The queued query's start moved to 2.5: wait 2.0 == timeout_s.
        assert [r.status for r in responses] == ["ok", "timeout"]
        assert responses[1].latency_s == pytest.approx(2.0)

    def test_exact_timeout_wait_is_rejected_at_admission(self):
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=10,
            timeout_s=1.0,
            cost_model=SLOW,
        )
        fe.submit_query(0.0)  # serves [0, 1)
        fe.submit_query(0.0)  # earliest start 1.0: wait == timeout_s
        responses = fe.flush()
        assert [r.status for r in responses] == ["ok", "timeout"]
        assert responses[1].latency_s == pytest.approx(1.0)

    @pytest.mark.parametrize("submissions", [2, 3, 4, 5, 8])
    def test_frontends_agree_on_the_capacity_edge(self, submissions):
        """QueryFrontend and ThreadedFrontend produce the same status
        multiset when arrivals sweep across the exact queue capacity
        (both are made busy first so every submission must queue)."""
        capacity = 3
        busy_cost = CostModel(
            seconds_per_pair=0.0,
            per_result_tuple_s=0.0,
            query_base_s=1.0,
            cache_hit_s=1.0,
            mutation_base_s=1e6,
        )
        virtual = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=capacity,
            timeout_s=1e9,
            cost_model=busy_cost,
        )
        virtual.apply_insert(0.0, [0.5, 0.5])  # server busy ~forever...
        for _ in range(submissions):
            virtual.submit_query(1.0)
        virtual_statuses = sorted(
            r.status for r in virtual.flush()
        )

        threaded = ThreadedFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=capacity,
            timeout_s=1e9,
        )
        # Submit everything before start(): the bounded queue fills to
        # exactly `capacity` and the overflow sheds, deterministically.
        for _ in range(submissions):
            threaded.submit()
        threaded.start()
        threaded_statuses = sorted(r.status for r in threaded.stop())

        assert virtual_statuses == threaded_statuses
        assert virtual_statuses == sorted(
            ["ok"] * min(submissions, capacity)
            + ["shed"] * max(0, submissions - capacity)
        )

    @pytest.mark.parametrize("gap", [0.0, 0.4, 0.5, 0.6, 1.1])
    def test_outcome_conservation_across_timeout_edges(self, gap):
        """serve.queries + shed + timed_out == submissions, with
        arrivals swept across the exact-timeout boundary."""
        fe = QueryFrontend(
            small_index(),
            cache_capacity=0,
            queue_capacity=2,
            timeout_s=0.5,
            cost_model=SLOW,
        )
        submissions = 6
        for i in range(submissions):
            fe.submit_query(i * gap)
        responses = fe.flush()
        assert len(responses) == submissions
        assert (
            fe.counters[SERVE_QUERIES]
            + fe.counters[SERVE_QUERIES_SHED]
            + fe.counters[SERVE_QUERIES_TIMED_OUT]
            == submissions
        )


class TestCacheIntegration:
    def test_repeat_query_hits_until_a_delta_lands(self):
        fe = QueryFrontend(small_index(), queue_capacity=10, timeout_s=10.0)
        fe.submit_query(0.0)
        fe.submit_query(0.1)
        fe.apply_insert(0.2, [0.99, 0.99], 777)  # epoch bump (non-member)
        fe.submit_query(0.3)
        fe.submit_query(0.4)
        responses = fe.flush()
        assert [r.cache_hit for r in responses] == [
            False,
            True,
            False,
            True,
        ]

    def test_policies_agree_on_results(self):
        region = ((0.0, 0.0), (0.6, 0.6))
        answers = {}
        for policy in ("delta", "recompute"):
            fe = QueryFrontend(
                small_index(),
                policy=policy,
                cache_capacity=0,
                queue_capacity=100,
                timeout_s=1e6,
            )
            fe.submit_query(0.0)
            fe.submit_query(0.1, region)
            fe.apply_delete(0.2, int(fe.index.skyline_ids()[0]))
            fe.submit_query(0.3)
            answers[policy] = [
                r.result.ids.tolist() for r in fe.flush()
            ]
        assert answers["delta"] == answers["recompute"]


class TestWorkloadReplay:
    @pytest.mark.parametrize("name", sorted(SERVE_WORKLOADS))
    def test_replay_is_deterministic(self, name):
        report, _ = run_workload(name, seed=5, scale=0.25)
        again, _ = run_workload(name, seed=5, scale=0.25)
        assert report == again

    def test_reports_carry_the_headline_numbers(self):
        report, _ = run_workload("read-heavy", seed=2, scale=0.25)
        assert report["queries_submitted"] == sum(
            (
                report["queries_served"],
                report["queries_shed"],
                report["queries_timed_out"],
            )
        )
        assert 0.0 <= report["cache_hit_rate"] <= 1.0
        assert report["p50_latency_s"] <= report["p99_latency_s"]
        assert report["queries_per_s"] > 0

    def test_bursty_workload_sheds(self):
        report, _ = run_workload("bursty-shed", seed=17, scale=0.5)
        assert report["queries_shed"] > 0

    def test_events_validate_end_to_end(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        workload = SERVE_WORKLOADS["write-heavy"].scaled(0.25)
        stream = generate_ops(workload, seed=3)
        index = SkylineIndex(
            stream.initial_data,
            staleness_budget=workload.staleness_budget,
            bus=bus,
        )
        frontend = QueryFrontend(
            index,
            cache_capacity=workload.cache_capacity,
            queue_capacity=workload.queue_capacity,
            timeout_s=workload.timeout_s,
        )
        responses = replay(frontend, stream)
        assert validate_events(log.events) == []
        served = [e for e in log.events if e.kind == "serve_query_served"]
        assert len(served) == sum(1 for r in responses if r.status == "ok")
        report = build_serve_report(stream, frontend, responses)
        assert report["final_epoch"] == index.epoch


class TestThreadedSmoke:
    def test_serves_and_stops_cleanly(self):
        index = small_index()
        fe = ThreadedFrontend(index, queue_capacity=64, timeout_s=30.0)
        fe.start()
        for _ in range(20):
            fe.submit()
        fe.apply_insert([0.01, 0.01], 500)
        for _ in range(10):
            fe.submit()
        responses = fe.stop()
        ok = [r for r in responses if r.status == "ok"]
        assert len(ok) + sum(
            1 for r in responses if r.status in ("shed", "timeout")
        ) == 30
        assert all(r.latency_s >= 0 for r in ok)
        # Queries served after the insert see the new near-origin point
        # (it is undominated, so it must be a skyline member).
        assert 500 in ok[-1].result.ids.tolist()

    def test_double_start_rejected(self):
        fe = ThreadedFrontend(small_index())
        fe.start()
        with pytest.raises(ValidationError):
            fe.start()
        fe.stop()

    def test_concurrent_mutations_are_serialized_with_serving(self):
        # Regression for a REP009 finding: apply_insert/apply_delete
        # used to mutate the index and cache without _lock while the
        # worker thread read both under _lock.  Hammer mutations from a
        # second thread mid-serve; every mutation must land (epoch is
        # bumped once per insert/delete) and nothing may blow up.
        import threading

        index = small_index()
        epoch0 = index.epoch
        fe = ThreadedFrontend(index, queue_capacity=512, timeout_s=30.0)
        fe.start()
        errors = []

        def mutate():
            try:
                for i in range(40):
                    fe.apply_insert([0.01 + i * 1e-4, 0.02 - i * 1e-4], 900 + i)
                    if i % 5 == 2:
                        fe.apply_delete(900 + i)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        mutator = threading.Thread(target=mutate)
        mutator.start()
        for _ in range(120):
            fe.submit()
        mutator.join()
        responses = fe.stop()
        assert errors == []
        assert len(responses) == 120
        assert {r.status for r in responses} <= {"ok", "shed", "timeout"}
        deletes = sum(1 for i in range(40) if i % 5 == 2)
        assert index.epoch == epoch0 + 40 + deletes


class TestMetricsIntegration:
    def test_collector_fills_serve_histograms(self):
        from repro.obs import MetricsCollector
        from repro.obs.metrics import (
            H_SERVE_QUERY_LATENCY,
            H_SERVE_REPAIR_CANDIDATES,
        )

        bus = EventBus()
        collector = bus.subscribe(MetricsCollector())
        index = small_index(bus=bus)
        fe = QueryFrontend(index, queue_capacity=100, timeout_s=1e6)
        fe.submit_query(0.0)
        fe.apply_delete(0.1, int(index.skyline_ids()[0]))
        fe.submit_query(0.2)
        fe.flush()
        assert collector.histograms[H_SERVE_QUERY_LATENCY].count == 2
        assert collector.histograms[H_SERVE_REPAIR_CANDIDATES].count == 1
        summaries = collector.summaries(wall_clock=False)
        assert H_SERVE_QUERY_LATENCY in summaries


def test_virtual_mode_matches_bruteforce_under_load():
    """End-to-end: after a replayed mixed stream the served results are
    consistent with the index, and the index with brute force."""
    from repro.core.dominance import skyline_mask_bruteforce

    report, frontend = run_workload("write-heavy", seed=41, scale=0.25)
    snap = frontend.index.snapshot()
    expect = snap.ids[skyline_mask_bruteforce(snap.values)]
    assert np.array_equal(frontend.index.skyline_ids(), expect)
    assert report["final_skyline_size"] == expect.shape[0]
