"""The BSP superstep engine: compiler, cost model, and rendering.

Covers the superstep compiler's shape, byte-identity of BSP results to
the serial engine, the cost model against a hand-computed two-group
fixture (replication 4/3), the ``replication_rate >= 1`` property over
random workloads, the monotone replication-vs-budget frontier, barrier
rendering (ASCII ``=`` cells and the ``barrier`` Chrome-trace
category), counter documentation of everything the engine charges, the
run report's ``cost`` section, and the CLI surface
(``list --engines``, ``compute --engine bsp``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli, skyline
from repro.bsp import (
    BSPEngine,
    BSPProgram,
    Superstep,
    afrati_allpairs_bound,
    bsp_schedule_spans,
    compile_job,
    compile_jobs,
    render_bsp_gantt,
)
from repro.core.pointset import PointSet
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import (
    COUNTER_DOCS,
    matches_counter_family,
)
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import IdentityReducer, Mapper
from repro.obs.spans import chrome_trace_events


class EmitMapper(Mapper):
    """Re-emits its input records unchanged (keys route reducers)."""

    def map(self, key, value, ctx):
        ctx.emit(key, value)


def _two_group_job():
    """The hand-computable fixture: three points {a, b, c}, delivered
    as overlapping groups {a, b} -> reducer 0 and {b, c} -> reducer 1.

    Distinct sources n = 3, delivered copies = 4, so the replication
    rate is exactly 4/3 and the largest reducer input is 2 records.
    """
    values = np.array([[0.0, 1.0], [1.0, 0.5], [2.0, 0.0]])
    group_a = PointSet(np.array([0, 1]), values[:2])
    group_b = PointSet(np.array([1, 2]), values[1:])
    pairs = [(0, group_a), (1, group_b)]
    return MapReduceJob(
        name="two-groups",
        splits=kv_splits(pairs, 1),
        mapper_factory=EmitMapper,
        reducer_factory=IdentityReducer,
        num_reducers=2,
        partitioner=lambda key, n: key % n,
        cache=DistributedCache(),
    )


class TestCompiler:
    def test_job_compiles_to_two_supersteps(self):
        job = _two_group_job()
        program = compile_job(job)
        assert isinstance(program, BSPProgram)
        assert program.num_supersteps == 2
        assert program.num_barriers == 2
        map_step, reduce_step = program.supersteps
        assert map_step.phase == "map"
        assert map_step.communicates
        assert map_step.num_peers == len(job.splits)
        assert reduce_step.phase == "reduce"
        assert not reduce_step.communicates
        assert reduce_step.num_peers == job.num_reducers
        assert "two-groups" in program.describe()

    def test_compile_jobs_chains_programs(self):
        job = _two_group_job()
        programs = compile_jobs([job, job])
        assert [p.num_supersteps for p in programs] == [2, 2]

    def test_superstep_validates_phase_and_peers(self):
        with pytest.raises(ValidationError):
            Superstep(
                index=0, job_name="j", phase="sort", num_peers=1,
                communicates=False,
            )
        with pytest.raises(ValidationError):
            Superstep(
                index=0, job_name="j", phase="map", num_peers=0,
                communicates=True,
            )


class TestCostModel:
    def test_two_group_fixture_replicates_four_thirds(self):
        engine = BSPEngine()
        result = engine.run(_two_group_job())
        cost = engine.cost
        assert cost.rounds == 1
        assert cost.num_supersteps == 2
        assert cost.barriers == 2
        assert cost.source_records == 3
        assert cost.delivered_records == 4
        assert cost.replication_rate == pytest.approx(4 / 3)
        assert cost.max_reducer_input_records == 2
        map_cost, reduce_cost = cost.supersteps
        assert map_cost.phase == "map"
        assert map_cost.delivered_records == 4
        # h-relation degree: the single map peer sends 4 records, each
        # reduce peer receives 2 -> max over peers is 4.
        assert map_cost.h_records == 4
        assert map_cost.h_bytes > 0
        assert reduce_cost.h_records == 0
        # every reducer got one group
        assert len(result.reducer_outputs) == 2

    def test_cost_counters_charge_engine_bag_not_job_stats(self):
        engine = BSPEngine()
        result = engine.run(_two_group_job())
        bag = engine.cost_counters.as_dict()
        assert bag["mr.cost.rounds"] == 1
        assert bag["mr.cost.delivered_records"] == 4
        assert bag["mr.cost.superstep.0.h_records"] == 4
        # job stats stay engine-agnostic: no cost names leak in
        assert not any(
            name.startswith("mr.cost.")
            for name in result.stats.counters.as_dict()
        )

    def test_every_charged_cost_counter_is_documented(self):
        engine = BSPEngine()
        skyline(
            generate("anticorrelated", 300, 3, seed=5),
            algorithm="mr-gpmrs",
            engine=engine,
            num_reducers=3,
        )
        for name in engine.cost_counters.as_dict():
            assert name in COUNTER_DOCS or matches_counter_family(name), name

    def test_reset_cost_starts_a_fresh_report(self):
        engine = BSPEngine()
        engine.run(_two_group_job())
        engine.reset_cost()
        assert engine.cost.rounds == 0
        assert engine.cost.replication_rate == 1.0
        assert engine.cost_counters.as_dict() == {}

    def test_allpairs_bound_validates_and_divides(self):
        assert afrati_allpairs_bound(12, 4) == 3.0
        with pytest.raises(ValidationError):
            afrati_allpairs_bound(12, 0)
        with pytest.raises(ValidationError):
            afrati_allpairs_bound(-1, 4)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cardinality=st.integers(20, 120),
        num_reducers=st.integers(1, 4),
    )
    def test_replication_rate_at_least_one(
        self, seed, cardinality, num_reducers
    ):
        """Every source record is delivered at least once, whatever the
        workload or reducer count."""
        engine = BSPEngine()
        skyline(
            generate("independent", cardinality, 3, seed=seed),
            algorithm="mr-gpmrs",
            engine=engine,
            num_reducers=num_reducers,
        )
        cost = engine.cost
        assert cost.replication_rate >= 1.0
        assert cost.delivered_records >= cost.source_records
        assert cost.replication_rate == pytest.approx(
            cost.delivered_records / cost.source_records
        )

    def test_frontier_replication_non_increasing_in_budget(self):
        """Shrinking reducers grows the per-reducer budget q and must
        never cost more replication (the Lemma 2 / Figure 6 frontier)."""
        data = generate("anticorrelated", 1500, 3, seed=7)
        points = []
        for num_reducers in (1, 2, 4):
            engine = BSPEngine()
            skyline(
                data,
                algorithm="mr-gpmrs",
                engine=engine,
                num_reducers=num_reducers,
                tpp=187,
            )
            points.append(
                (
                    engine.cost.max_reducer_input_records,
                    engine.cost.replication_rate,
                )
            )
        points.sort()
        rates = [rate for _q, rate in points]
        assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:])), points
        assert rates[-1] == pytest.approx(1.0)  # one reducer: no copies


class TestEquivalenceAndReports:
    def test_bsp_matches_serial_bytewise(self):
        data = generate("anticorrelated", 260, 4, seed=45)
        serial = skyline(data, algorithm="mr-gpmrs", engine=SerialEngine())
        bsp = skyline(data, algorithm="mr-gpmrs", engine=BSPEngine())
        assert bsp.indices.tolist() == serial.indices.tolist()
        assert bsp.values.tolist() == serial.values.tolist()
        assert [j.counters.as_dict() for j in bsp.stats.jobs] == [
            j.counters.as_dict() for j in serial.stats.jobs
        ]

    def test_run_report_gains_cost_section_under_bsp(self):
        from repro.bench.harness import Cell, Workload, run_cell
        from repro.obs.schema import validate_report

        cell = Cell.make(
            Workload("independent", 200, 3, seed=3), "mr-gpmrs"
        )
        bsp_result = run_cell(cell, engine=BSPEngine(), report=True)
        report = bsp_result.report
        assert validate_report(report) == []
        assert report["cost"]["rounds"] > 0
        assert report["cost"]["replication_rate"] >= 1.0
        assert (
            report["cost"]["supersteps"]
            == 2 * report["cost"]["rounds"]
        )
        serial_result = run_cell(cell, report=True)
        assert "cost" not in serial_result.report
        assert validate_report(serial_result.report) == []


class TestBarrierRendering:
    def _stats(self):
        result = skyline(
            generate("independent", 200, 3, seed=4),
            algorithm="mr-gpmrs",
            engine=BSPEngine(),
        )
        return result.stats.jobs

    def test_ascii_gantt_renders_barriers_distinctly(self):
        jobs = self._stats()
        art = render_bsp_gantt(SimulatedCluster(), jobs)
        assert "=" in art  # barrier cells
        assert "~" in art  # the h-relation, still distinct
        assert "barriers '='" in art
        assert "supersteps 0-1" in art

    def test_chrome_trace_carries_barrier_category(self):
        jobs = self._stats()
        spans = bsp_schedule_spans(SimulatedCluster(), jobs)
        records = chrome_trace_events({"simulated": spans})
        categories = {r.get("cat") for r in records if r["ph"] == "X"}
        assert "barrier" in categories
        assert "shuffle" in categories
        barrier_names = [
            r["name"]
            for r in records
            if r["ph"] == "X" and r.get("cat") == "barrier"
        ]
        # two barriers per round, every round rendered
        assert len(barrier_names) == 2 * len(jobs)


class TestCLI:
    def test_list_engines_prints_registry(self, capsys):
        assert cli.main(["list", "--engines"]) == 0
        out = capsys.readouterr().out
        assert "engines:" in out
        assert "bsp" in out
        assert "supersteps" in out
        assert "BSPEngine" in out
        for name in ("serial", "threads", "processes", "contract"):
            assert name in out

    def test_compute_engine_bsp_prints_cost_line(self, capsys):
        code = cli.main(
            [
                "compute", "--algo", "mr-gpmrs",
                "--distribution", "independent",
                "-c", "300", "-d", "3",
                "--engine", "bsp", "--show", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bsp cost:" in out
        assert "replication" in out

    def test_gantt_engine_bsp_shows_barriers(self, capsys):
        code = cli.main(
            [
                "gantt", "--algo", "mr-gpmrs",
                "--distribution", "independent",
                "-c", "300", "-d", "3",
                "--engine", "bsp",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "barriers '='" in out
        assert "bsp cost:" in out
