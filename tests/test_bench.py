"""The bench harness and reporting."""

import numpy as np
import pytest

from repro.bench.harness import (
    Cell,
    Workload,
    run_cell,
    run_cells,
    scaled_cardinality,
    workload_data,
)
from repro.bench.reporting import format_cell, format_series, format_table, ratio
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster


@pytest.fixture
def tiny_cluster():
    return SimulatedCluster(num_nodes=2, task_overhead_s=0.0)


class TestWorkload:
    def test_materialise_deterministic(self):
        w = Workload("independent", 50, 3, seed=1)
        assert np.array_equal(w.materialise(), w.materialise())

    def test_label(self):
        assert (
            Workload("independent", 50, 3).label() == "independent-c50-d3"
        )

    def test_cache_returns_same_array(self):
        w = Workload("independent", 60, 2, seed=9)
        assert workload_data(w) is workload_data(w)


class TestRunCell:
    def test_metrics_populated(self, tiny_cluster):
        cell = Cell.make(Workload("independent", 200, 3, seed=2), "mr-gpsrs")
        result = run_cell(cell, cluster=tiny_cluster)
        assert result.runtime_s > 0
        assert result.skyline_size > 0
        assert result.wall_s > 0
        assert not result.is_dnf

    def test_bounds_injected_for_grid_algorithms(self, tiny_cluster):
        cell = Cell.make(Workload("independent", 100, 2, seed=2), "mr-gpsrs")
        result = run_cell(cell, cluster=tiny_cluster)
        grid = result.artifacts["grid"]
        assert grid.lows.tolist() == [0.0, 0.0]
        assert grid.highs.tolist() == [1.0, 1.0]

    def test_dnf_cells_skipped(self, tiny_cluster):
        cell = Cell.make(
            Workload("independent", 100, 2, seed=2), "mr-gpsrs", dnf=True
        )
        result = run_cell(cell, cluster=tiny_cluster)
        assert result.is_dnf and result.runtime_s is None

    def test_include_dnf_forces_run(self, tiny_cluster):
        cell = Cell.make(
            Workload("independent", 100, 2, seed=2), "mr-gpsrs", dnf=True
        )
        result = run_cell(cell, cluster=tiny_cluster, include_dnf=True)
        assert not result.is_dnf

    def test_options_forwarded(self, tiny_cluster):
        cell = Cell.make(
            Workload("independent", 100, 2, seed=2), "mr-gpsrs", ppd=5
        )
        result = run_cell(cell, cluster=tiny_cluster)
        assert result.artifacts["grid"].n == 5

    def test_partition_compare_maxima_collected(self, tiny_cluster):
        cell = Cell.make(
            Workload("anticorrelated", 300, 3, seed=2),
            "mr-gpmrs",
            num_reducers=3,
            ppd=3,
        )
        result = run_cell(cell, cluster=tiny_cluster)
        assert result.max_mapper_compares > 0

    def test_run_cells_order_preserved(self, tiny_cluster):
        w = Workload("independent", 80, 2, seed=2)
        cells = [Cell.make(w, "mr-gpsrs"), Cell.make(w, "mr-bnl")]
        results = run_cells(cells, cluster=tiny_cluster)
        assert [r.cell.algorithm for r in results] == ["mr-gpsrs", "mr-bnl"]


class TestScaledCardinality:
    def test_scaling(self):
        assert scaled_cardinality(100_000, 0.01) == 1000

    def test_floor(self):
        assert scaled_cardinality(100, 0.0001) == 64

    def test_validates(self):
        with pytest.raises(ValidationError):
            scaled_cardinality(1000, 0)


class TestReporting:
    def test_format_cell_dnf(self):
        assert format_cell(None).strip() == "DNF"
        assert format_cell(1.23456).strip() == "1.235"
        assert format_cell(7).strip() == "7"

    def test_format_table(self):
        text = format_table(
            ["x", "y"], [[1, 2.0], [3, None]], title="T"
        )
        assert "T" in text and "DNF" in text
        assert text.splitlines()[1].strip().startswith("x")

    def test_format_series_layout(self):
        text = format_series(
            "dim", [2, 3], {"a": [1.0, 2.0], "b": [3.0, None]}
        )
        lines = text.splitlines()
        assert "dim" in lines[0] and "a" in lines[0] and "b" in lines[0]
        assert "DNF" in lines[-1]

    def test_ratio(self):
        assert ratio(4.0, 2.0) == 2.0
        assert ratio(None, 2.0) is None
        assert ratio(2.0, None) is None
        assert ratio(2.0, 0.0) is None


class TestServeWorkloadScaling:
    """`ServeWorkload.scaled` must shrink the admission knobs with the
    load, or --quick bench runs see distorted shed/hit rates."""

    def test_scaled_shrinks_admission_knobs(self):
        from repro.serve import SERVE_WORKLOADS

        base = SERVE_WORKLOADS["flash-crowd"]
        half = base.scaled(0.5)
        assert half.queue_capacity == max(2, base.queue_capacity // 2)
        assert half.cache_capacity == max(2, base.cache_capacity // 2)
        assert half.staleness_budget == max(16, base.staleness_budget // 2)

    def test_scaled_floors_never_degenerate(self):
        from repro.serve import SERVE_WORKLOADS

        tiny = SERVE_WORKLOADS["flash-crowd"].scaled(0.01)
        assert tiny.queue_capacity >= 2
        assert tiny.cache_capacity >= 2
        assert tiny.staleness_budget >= 16
        # Zero stays zero: scaling must not re-enable a disabled cache.
        from dataclasses import replace

        uncached = replace(SERVE_WORKLOADS["flash-crowd"], cache_capacity=0)
        assert uncached.scaled(0.5).cache_capacity == 0

    def test_scaled_preserves_shed_rate(self):
        """Shed rate is a property of the workload *shape*: halving the
        trace with the knobs scaled along must land near the full-scale
        rate (it drifted several-fold when only num_ops shrank)."""
        from repro.serve import SERVE_WORKLOADS, generate_ops, serve_stream

        base = SERVE_WORKLOADS["flash-crowd"]
        rates = []
        for factor in (1.0, 0.5):
            report, _ = serve_stream(
                generate_ops(base.scaled(factor), seed=0)
            )
            rates.append(
                report["queries_shed"] / report["queries_submitted"]
            )
        full, half = rates
        assert full > 0  # the workload actually sheds at full scale
        assert abs(half - full) < 0.1
        assert half <= base.shed_bound
