"""The verification utility and the ASCII plot renderer."""

import numpy as np
import pytest

from repro import skyline
from repro.bench.asciiplot import ascii_plot, plot_panel
from repro.core.reference import bruteforce_skyline_indices
from repro.errors import ValidationError
from repro.verify import verify_skyline


class TestVerifySkyline:
    def test_accepts_correct_answer(self, rng):
        data = rng.random((300, 3))
        result = skyline(data, algorithm="mr-gpmrs")
        report = verify_skyline(data, result.indices)
        assert report.ok
        assert report.reported == len(result)
        report.raise_if_failed()  # no-op

    def test_detects_dominated_extra(self, rng):
        data = rng.random((200, 3))
        good = bruteforce_skyline_indices(data)
        # add a dominated row
        dominated = next(
            i for i in range(200) if i not in set(good.tolist())
        )
        bad = np.concatenate([good, [dominated]])
        report = verify_skyline(data, bad)
        assert not report.ok
        assert dominated in report.dominated_reported
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    def test_detects_missing_member(self, rng):
        data = rng.random((200, 3))
        good = bruteforce_skyline_indices(data)
        report = verify_skyline(data, good[:-1])
        assert not report.ok
        assert int(good[-1]) in report.missing

    def test_duplicate_semantics(self):
        data = np.array([[0.1, 0.1], [0.1, 0.1], [0.9, 0.9]])
        assert verify_skyline(data, [0, 1]).ok
        assert not verify_skyline(data, [0]).ok  # duplicate missing

    def test_prefs_respected(self, rng):
        data = rng.random((150, 2))
        result = skyline(data, algorithm="sfs", prefs=["min", "max"])
        assert verify_skyline(data, result.indices, prefs=["min", "max"]).ok
        # with the wrong prefs it should (almost surely) fail
        assert not verify_skyline(data, result.indices).ok

    def test_input_validation(self, rng):
        data = rng.random((10, 2))
        with pytest.raises(ValidationError):
            verify_skyline(data, [0, 0])
        with pytest.raises(ValidationError):
            verify_skyline(data, [99])

    def test_every_algorithm_passes_verification(self, rng):
        from repro.data.generators import generate

        data = generate("anticorrelated", 250, 3, seed=19)
        for name in ("mr-gpsrs", "mr-gpmrs", "mr-bnl", "sky-mr"):
            result = skyline(data, algorithm=name)
            assert verify_skyline(data, result.indices).ok, name


class TestAsciiPlot:
    def test_basic_rendering(self):
        text = ascii_plot(
            [2, 4, 6, 8],
            {"a": [1.0, 2.0, 4.0, 8.0], "b": [2.0, 2.0, 2.0, 2.0]},
            title="demo",
        )
        assert "demo" in text
        assert "o=a" in text and "x=b" in text
        assert "|" in text

    def test_dnf_points_absent(self):
        text = ascii_plot(
            [1, 2, 3],
            {"a": [1.0, None, 3.0]},
        )
        assert text.count("o") >= 2

    def test_log_axis(self):
        text = ascii_plot(
            [1, 2, 3],
            {"a": [0.1, 10.0, 1000.0]},
            logy=True,
        )
        assert "log y-axis" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ascii_plot([1, 2], {"a": [0.0, 1.0]}, logy=True)

    def test_all_dnf(self):
        text = ascii_plot([1, 2], {"a": [None, None]}, title="t")
        assert "DNF" in text

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_plot([1], {}, width=60)
        with pytest.raises(ValidationError):
            ascii_plot([1, 2], {"a": [1.0]})
        with pytest.raises(ValidationError):
            ascii_plot([1], {"a": [1.0]}, width=4)

    def test_plot_panel_integration(self):
        from repro.bench.experiments import run_figure10
        from repro.mapreduce.cluster import SimulatedCluster

        report = run_figure10(
            scale=0.002, quick=True, cluster=SimulatedCluster()
        )
        text = plot_panel(report.panels[1])
        assert "mr-gpmrs" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([1, 2], {"a": [5.0, 5.0]})
        assert "o" in text
