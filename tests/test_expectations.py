"""The paper-expectation verification layer."""

import pytest

from repro.bench.expectations import (
    EXPECTATIONS,
    Expectation,
    evaluate_report,
    render_verdicts,
)
from repro.bench.experiments import FigureReport, Panel
from repro.bench.harness import Cell, CellResult, Workload


def fake_result(runtime, algorithm="mr-gpmrs", **extra):
    cell = Cell.make(Workload("independent", 100, 3), algorithm)
    return CellResult(cell=cell, runtime_s=runtime, **extra)


def fake_panel(x_values, series):
    panel = Panel(title="t", x_name="x", x_values=list(x_values))
    for name, runtimes in series.items():
        panel.series[name] = [fake_result(v) for v in runtimes]
    return panel


class TestFramework:
    def test_every_figure_has_expectations(self):
        assert set(EXPECTATIONS) == {"fig7", "fig8", "fig9", "fig10", "fig11"}
        for group in EXPECTATIONS.values():
            assert group

    def test_verdict_rendering(self):
        exp = Expectation("X.1", "claim text", lambda r: True)
        report = FigureReport("F", "t", [])
        verdicts = [
            type(v)(expectation=exp, held=h)
            for v, h in zip(evaluate_report("fig10", report) or [], [])
        ]
        # direct construction instead
        from repro.bench.expectations import Verdict

        text = render_verdicts(
            [Verdict(exp, True), Verdict(exp, False, "why")]
        )
        assert "HELD" in text and "NOT HELD" in text and "why" in text

    def test_erroring_check_becomes_not_held(self):
        def boom(report):
            raise RuntimeError("cannot evaluate")

        EXPECTATIONS["_tmp"] = [Expectation("T.1", "boom", boom)]
        try:
            verdicts = evaluate_report("_tmp", FigureReport("F", "t", []))
            assert not verdicts[0].held
            assert "errored" in verdicts[0].detail
        finally:
            del EXPECTATIONS["_tmp"]

    def test_unknown_figure_empty(self):
        assert evaluate_report("nope", FigureReport("F", "t", [])) == []


class TestFigure10Checks:
    def make_report(self, independent, anticorrelated):
        return FigureReport(
            "Figure 10",
            "t",
            [
                fake_panel([1, 5, 9, 13, 17], {"mr-gpmrs": independent}),
                fake_panel([1, 5, 9, 13, 17], {"mr-gpmrs": anticorrelated}),
            ],
        )

    def test_paper_shape_holds(self):
        report = self.make_report(
            independent=[1.0, 1.05, 1.02, 1.0, 1.0],
            anticorrelated=[8.0, 5.0, 4.2, 4.0, 3.8],
        )
        verdicts = evaluate_report("fig10", report)
        assert all(v.held for v in verdicts)

    def test_inverted_shape_fails(self):
        report = self.make_report(
            independent=[1.0, 3.0, 5.0, 7.0, 9.0],
            anticorrelated=[4.0, 5.0, 6.0, 7.0, 8.0],
        )
        verdicts = {v.expectation.exp_id: v.held for v in evaluate_report(
            "fig10", report
        )}
        assert not verdicts["F10.1"]
        assert not verdicts["F10.3"]


class TestFigure8Checks:
    def test_dnf_detection(self):
        def panel_lowd():
            # shaped like our measured Figure 8(c): GPSRS competitive
            # through d=3, crossover at d=4
            return fake_panel(
                [2, 3, 4, 5, 6],
                {
                    "mr-gpsrs": [0.2, 0.31, 1.8, 6.3, 10.5],
                    "mr-gpmrs": [0.2, 0.28, 1.1, 3.3, 5.1],
                    "mr-bnl": [0.3, 0.4, 1.0, 4.1, 8.5],
                    "mr-angle": [0.3, 0.4, 3.7, 28.6, None],
                },
            )

        high = fake_panel(
            [7, 8],
            {
                "mr-gpsrs": [10.9, 8.5],
                "mr-gpmrs": [5.1, 4.0],
                "mr-bnl": [None, None],
                "mr-angle": [None, None],
            },
        )
        report = FigureReport(
            "Figure 8", "t", [panel_lowd(), high, panel_lowd(), high]
        )
        verdicts = {
            v.expectation.exp_id: v.held
            for v in evaluate_report("fig8", report)
        }
        assert verdicts["F8.1"]
        assert verdicts["F8.2"]
        assert verdicts["F8.3"]


class TestLiveSmoke:
    def test_fig10_quick_run_satisfies_core_claims(self):
        """An actual (tiny) run: at least the anti-correlated
        improvement claim must hold."""
        from repro.bench.experiments import run_figure10
        from repro.mapreduce.cluster import SimulatedCluster

        report = run_figure10(scale=0.005, cluster=SimulatedCluster())
        verdicts = {
            v.expectation.exp_id: v.held
            for v in evaluate_report("fig10", report)
        }
        assert verdicts["F10.1"]
