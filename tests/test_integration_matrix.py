"""The correctness matrix: every MapReduce algorithm must produce the
exact brute-force skyline on every distribution, dimensionality, and
cluster shape combination tested here. This is the repository's
central integration guarantee."""

import numpy as np
import pytest

from repro import skyline
from repro.data.generators import generate
from repro.mapreduce.cluster import SimulatedCluster

MR_ALGORITHMS = [
    "mr-gpsrs",
    "mr-gpmrs",
    "mr-bnl",
    "mr-sfs",
    "mr-angle",
    "mr-hybrid",
]


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
@pytest.mark.parametrize(
    "distribution", ["independent", "correlated", "anticorrelated"]
)
def test_matrix_3d(oracle, algorithm, distribution):
    data = generate(distribution, 300, 3, seed=100)
    result = skyline(data, algorithm=algorithm)
    assert set(result.indices.tolist()) == oracle(data)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
@pytest.mark.parametrize("d", [1, 2, 5, 6])
def test_matrix_dimensionalities(oracle, algorithm, d):
    data = generate("independent", 200, d, seed=101)
    result = skyline(data, algorithm=algorithm)
    assert set(result.indices.tolist()) == oracle(data)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_matrix_small_cluster(oracle, algorithm):
    cluster = SimulatedCluster(num_nodes=2, reduce_slots_per_node=1)
    data = generate("anticorrelated", 250, 3, seed=102)
    result = skyline(data, algorithm=algorithm, cluster=cluster)
    assert set(result.indices.tolist()) == oracle(data)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_matrix_tiny_datasets(oracle, algorithm):
    for n in (1, 2, 3, 7):
        data = generate("independent", n, 3, seed=103)
        result = skyline(data, algorithm=algorithm)
        assert set(result.indices.tolist()) == oracle(data), n


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_matrix_skewed_input_order(oracle, algorithm, rng):
    """Sorted input puts all skyline tuples in one mapper's split."""
    data = rng.random((300, 3))
    data = data[np.argsort(data.sum(axis=1))]
    result = skyline(data, algorithm=algorithm)
    assert set(result.indices.tolist()) == oracle(data)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_matrix_grid_aligned_values(oracle, algorithm):
    """Values exactly on cell boundaries (0, 0.25, 0.5, ...)."""
    grid_vals = np.linspace(0.0, 1.0, 5)
    rng = np.random.default_rng(104)
    data = rng.choice(grid_vals, size=(200, 3))
    result = skyline(data, algorithm=algorithm)
    assert set(result.indices.tolist()) == oracle(data)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS + ["mr-bitmap"])
def test_matrix_discrete_domain(oracle, algorithm):
    rng = np.random.default_rng(105)
    data = rng.integers(0, 8, (250, 3)).astype(float)
    result = skyline(data, algorithm=algorithm)
    assert set(result.indices.tolist()) == oracle(data)


@pytest.mark.parametrize("algorithm", MR_ALGORITHMS)
def test_matrix_constant_dimension(oracle, algorithm):
    """One dimension constant (degenerate grid axis)."""
    rng = np.random.default_rng(106)
    data = rng.random((200, 3))
    data[:, 1] = 0.5
    result = skyline(data, algorithm=algorithm)
    assert set(result.indices.tolist()) == oracle(data)


def test_all_algorithms_agree_pairwise(rng):
    """Transitive sanity: every algorithm returns the identical set."""
    data = generate("anticorrelated", 350, 4, seed=107)
    reference = None
    for algorithm in MR_ALGORITHMS + ["sfs", "bnl"]:
        got = frozenset(skyline(data, algorithm=algorithm).indices.tolist())
        if reference is None:
            reference = got
        assert got == reference, algorithm
