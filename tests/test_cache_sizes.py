"""Distributed cache and payload size estimation."""

import numpy as np
import pytest

from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.sizes import payload_size


class TestDistributedCache:
    def test_get_and_contains(self):
        cache = DistributedCache({"grid": 42})
        assert cache["grid"] == 42
        assert "grid" in cache and "other" not in cache
        assert cache.get("other") is None

    def test_missing_key_names_available(self):
        cache = DistributedCache({"a": 1, "b": 2})
        with pytest.raises(ValidationError) as exc:
            cache["zzz"]
        assert "a" in str(exc.value) and "b" in str(exc.value)

    def test_iteration_and_len(self):
        cache = DistributedCache({"b": 1, "a": 2})
        assert list(cache) == ["a", "b"]
        assert len(cache) == 2

    def test_empty(self):
        assert len(DistributedCache.empty()) == 0

    def test_payload_bytes_counts_contents(self):
        small = DistributedCache({"x": b"ab"})
        big = DistributedCache({"x": b"a" * 10_000})
        assert big.payload_bytes() > small.payload_bytes()


class TestPayloadSize:
    def test_bytes(self):
        assert payload_size(b"12345") >= 5

    def test_string_utf8(self):
        assert payload_size("héllo") >= 6

    def test_numbers_flat_cost(self):
        assert payload_size(3) == payload_size(1 << 60)
        assert payload_size(2.5) == payload_size(True)

    def test_ndarray_nbytes(self):
        arr = np.zeros((10, 10))
        assert payload_size(arr) >= arr.nbytes

    def test_containers_recurse(self):
        inner = payload_size(1.0)
        assert payload_size([1.0, 1.0]) >= 2 * inner
        assert payload_size({"k": 1.0}) >= payload_size("k") + inner

    def test_pointset_counts_both_arrays(self):
        ps = PointSet.from_array(np.zeros((100, 4)))
        assert payload_size(ps) >= ps.ids.nbytes + ps.values.nbytes

    def test_none(self):
        assert payload_size(None) > 0

    def test_opaque_object_pickled(self):
        class Thing:
            pass

        assert payload_size(Thing()) > 0

    def test_larger_data_larger_size(self):
        small = PointSet.from_array(np.zeros((10, 2)))
        large = PointSet.from_array(np.zeros((1000, 2)))
        assert payload_size(large) > payload_size(small)
