"""Counters ≡ geometry, on arbitrary occupancy.

The Figure-11 measurement is only meaningful if the partition-compare
counter equals the geometric quantity it claims to count: for each
partition present at a task, the number of *present* partitions in its
ADR. These tests recompute that sum independently from the data and
require exact equality — for the GPSRS reducer (all surviving
partitions in one place) and for each GPSRS mapper (its own split's
occupancy).
"""

import numpy as np
import pytest

from repro import skyline
from repro.data.generators import clustered, generate
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import PARTITION_COMPARES
from repro.mapreduce.splits import contiguous_splits


def adr_pair_count(grid, present):
    """Sum over p in present of |ADR(p) ∩ present|."""
    present = sorted(present)
    coords = grid.coords_array()
    total = 0
    for p in present:
        for q in present:
            if q != p and (coords[q] <= coords[p]).all():
                total += 1
    return total


@pytest.mark.parametrize(
    "maker",
    [
        lambda: generate("independent", 4000, 3, seed=31),
        lambda: generate("anticorrelated", 4000, 3, seed=32),
        lambda: clustered(4000, 3, seed=33, num_clusters=3),
        lambda: generate("independent", 900, 2, seed=34),
    ],
)
def test_gpsrs_reducer_counter_matches_geometry(maker):
    data = maker()
    d = data.shape[1]
    n = 4
    cluster = SimulatedCluster()
    result = skyline(
        data,
        algorithm="mr-gpsrs",
        cluster=cluster,
        ppd=n,
        bounds=(np.zeros(d), np.ones(d)),
    )
    grid = result.artifacts["grid"]
    bitstring = result.artifacts["bitstring"]
    # partitions reaching the reducer: non-pruned cells that contain data
    cells = grid.cell_indices(data)
    present = {
        int(c) for c in np.unique(cells) if bitstring[int(c)]
    }
    expected = adr_pair_count(grid, present)
    job = result.stats.jobs[1]
    measured = job.max_task_counter("reduce", PARTITION_COMPARES)
    assert measured == expected


def test_gpsrs_mapper_counters_match_per_split_geometry():
    data = generate("independent", 5000, 3, seed=35)
    n, d = 3, 3
    cluster = SimulatedCluster(num_nodes=4)
    result = skyline(
        data,
        algorithm="mr-gpsrs",
        cluster=cluster,
        ppd=n,
        bounds=(np.zeros(d), np.ones(d)),
    )
    grid = result.artifacts["grid"]
    bitstring = result.artifacts["bitstring"]
    job = result.stats.jobs[1]
    splits = contiguous_splits(data, cluster.map_slots)
    for task, split in zip(job.map_tasks, splits):
        rows = np.vstack([row for _rid, row in split])
        cells = grid.cell_indices(rows)
        present = {
            int(c) for c in np.unique(cells) if bitstring[int(c)]
        }
        expected = adr_pair_count(grid, present)
        assert task.counters[PARTITION_COMPARES] == expected


def test_gpmrs_reducer_counters_match_group_geometry():
    """Each GPMRS reducer compares exactly the ADR pairs *within the
    partitions it received* (group-local geometry)."""
    from repro.grid.groups import generate_independent_groups, merge_groups

    data = generate("anticorrelated", 5000, 3, seed=36)
    n, d, r = 4, 3, 4
    cluster = SimulatedCluster()
    result = skyline(
        data,
        algorithm="mr-gpmrs",
        cluster=cluster,
        ppd=n,
        num_reducers=r,
        bounds=(np.zeros(d), np.ones(d)),
    )
    grid = result.artifacts["grid"]
    bitstring = result.artifacts["bitstring"]
    groups = merge_groups(
        generate_independent_groups(grid, bitstring), r, "computation"
    )
    cells = grid.cell_indices(data)
    occupied = {int(c) for c in np.unique(cells) if bitstring[int(c)]}
    job = result.stats.jobs[1]
    by_index = {t.task_id.index: t for t in job.reduce_tasks}
    for group in groups:
        present = set(group.partitions) & occupied
        expected = adr_pair_count(grid, present)
        task = by_index[group.group_id]
        assert task.counters[PARTITION_COMPARES] == expected
