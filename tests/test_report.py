"""Run reports: structure, determinism, rendering, diffing.

The load-bearing property: identical (data, seed, configuration) runs
produce byte-identical reports outside the single top-level ``wall``
key on every engine — the serial run twice, and each parallel engine
against serial (whose reports differ only in the declared engine name).
"""

import copy
import json

import pytest

from repro import skyline
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsCollector
from repro.obs.report import (
    build_report,
    canonical_json,
    dataset_fingerprint,
    diff_reports,
    load_report,
    render_report,
    skyline_checksum,
    write_report,
)
from repro.obs.schema import (
    REPORT_REQUIRED_KEYS,
    validate_report,
)

CLUSTER = SimulatedCluster(num_nodes=3)
CONFIG = {"source": "anticorrelated", "seed": 7, "prefs": None}


def _report(engine_cls, **engine_kw):
    bus = EventBus()
    collector = bus.subscribe(MetricsCollector())
    data = generate("anticorrelated", 250, 3, seed=7)
    engine = engine_cls(bus=bus, **engine_kw)
    result = skyline(
        data, algorithm="mr-gpmrs", cluster=CLUSTER, engine=engine
    )
    report = build_report(
        result,
        data,
        CLUSTER,
        engine=engine,
        collector=collector,
        config=dict(CONFIG),
    )
    return report, result


class TestStructure:
    @pytest.fixture(scope="class")
    def built(self):
        return _report(SerialEngine)

    def test_validates_against_schema(self, built):
        report, _ = built
        assert validate_report(report) == []

    def test_required_keys_present(self, built):
        report, _ = built
        assert set(REPORT_REQUIRED_KEYS) <= set(report)

    def test_counters_match_pipeline_stats(self, built):
        report, result = built
        assert report["counters"] == result.stats.counters().as_dict()

    def test_dataset_and_skyline_fingerprints(self, built):
        report, result = built
        data = generate("anticorrelated", 250, 3, seed=7)
        assert report["dataset"] == dataset_fingerprint(data)
        assert report["dataset"]["cardinality"] == 250
        assert report["skyline"] == skyline_checksum(result)
        assert report["skyline"]["size"] == len(result)

    def test_config_declares_engine_and_caller_context(self, built):
        report, _ = built
        assert report["config"]["engine"] == "SerialEngine"
        assert report["config"]["cluster"] == CLUSTER.describe()
        assert report["config"]["seed"] == 7

    def test_jobs_carry_tasks_and_schedules(self, built):
        report, result = built
        assert [j["name"] for j in report["jobs"]] == [
            j.job_name for j in result.stats.jobs
        ]
        for job, stats in zip(report["jobs"], result.stats.jobs):
            assert len(job["tasks"]) == (
                stats.num_map_tasks + stats.num_reduce_tasks
            )
            assert job["shuffle_bytes"] == stats.shuffle_bytes
            assert job["schedule"]["makespan_s"] == pytest.approx(
                CLUSTER.job_makespan(stats)
            )
            for task in job["tasks"]:
                assert task["attempts"]
                # durations are wall-clock: banned from the entry
                assert "duration_s" not in task["attempts"][0]

    def test_simulated_matches_stats(self, built):
        report, result = built
        assert report["simulated"]["makespan_s"] == pytest.approx(
            result.stats.simulated_s
        )

    def test_wall_isolation_enforced_by_validator(self, built):
        report, _ = built
        leaky = copy.deepcopy(report)
        leaky["config"]["wall_s"] = 1.0
        assert any("wall" in p for p in validate_report(leaky))

    def test_json_serializable(self, built):
        report, _ = built
        assert json.loads(json.dumps(report)) == report


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return _report(SerialEngine)[0]

    def test_serial_twice_byte_identical(self, serial):
        again = _report(SerialEngine)[0]
        assert canonical_json(serial) == canonical_json(again)
        assert diff_reports(serial, again) == []

    @pytest.mark.parametrize(
        "engine_cls,engine_kw",
        [
            (ThreadPoolEngine, {"max_workers": 4}),
            (ProcessPoolEngine, {"max_workers": 2}),
        ],
        ids=["threads", "processes"],
    )
    def test_parallel_engines_differ_only_in_declared_name(
        self, serial, engine_cls, engine_kw
    ):
        report = _report(engine_cls, **engine_kw)[0]
        assert validate_report(report) == []
        # The engine's class name is declared configuration, so it is
        # the one legitimate difference; everything else — counters,
        # histograms, schedules, checksums — must match byte for byte.
        assert diff_reports(serial, report) == [
            "config.engine: 'SerialEngine' != "
            f"'{engine_cls.__name__}'"
        ]
        trimmed = json.loads(canonical_json(report))
        expected = json.loads(canonical_json(serial))
        trimmed["config"].pop("engine")
        expected["config"].pop("engine")
        assert json.dumps(trimmed, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_canonical_json_excludes_wall(self, serial):
        assert '"wall"' not in canonical_json(serial)
        assert "wall_s" not in canonical_json(serial)

    def test_different_seed_changes_report(self, serial):
        data = generate("anticorrelated", 250, 3, seed=8)
        engine = SerialEngine()
        result = skyline(
            data, algorithm="mr-gpmrs", cluster=CLUSTER, engine=engine
        )
        other = build_report(result, data, CLUSTER, engine=engine)
        assert diff_reports(serial, other)


class TestRoundTripAndRendering:
    def test_write_load_round_trip(self, tmp_path):
        report, _ = _report(SerialEngine)
        path = str(tmp_path / "report.json")
        write_report(path, report)
        assert load_report(path) == report

    def test_load_rejects_non_reports(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            json.dump({"not": "a report"}, handle)
        with pytest.raises(ValidationError):
            load_report(path)

    def test_render_mentions_the_essentials(self):
        report, result = _report(SerialEngine)
        text = render_report(report)
        assert "mr-gpmrs" in text
        assert f"{len(result)} tuples" in text
        assert "mr.records_in" in text
        assert "obs.tuple_compares_per_task" in text


class TestDiff:
    def test_reports_a_doctored_counter(self):
        report, _ = _report(SerialEngine)
        doctored = copy.deepcopy(report)
        doctored["counters"]["mr.records_in"] += 1
        (difference,) = diff_reports(report, doctored)
        assert difference.startswith("counters.mr.records_in:")

    def test_ignores_wall_by_default(self):
        report, _ = _report(SerialEngine)
        doctored = copy.deepcopy(report)
        doctored["wall"]["wall_s"] = 999.0
        assert diff_reports(report, doctored) == []

    def test_reports_missing_keys_and_length_mismatches(self):
        report, _ = _report(SerialEngine)
        doctored = copy.deepcopy(report)
        del doctored["skyline"]
        doctored["jobs"] = doctored["jobs"][:-1]
        differences = diff_reports(report, doctored)
        assert "skyline: only in first" in differences
        assert any(d.startswith("jobs: length") for d in differences)
