"""Run every figure reproduction + ablation and dump the reports.

Usage:  python scripts/run_all_experiments.py [scale] [outfile]

This is what produced the measured numbers recorded in EXPERIMENTS.md.
"""

import sys
import time

from repro.bench.expectations import evaluate_report, render_verdicts
from repro.bench.experiments import EXPERIMENTS
from repro.mapreduce.cluster import SimulatedCluster


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    outfile = sys.argv[2] if len(sys.argv) > 2 else None
    cluster = SimulatedCluster()
    chunks = [f"scale = {scale} (paper cardinalities x {scale})\n"]
    held = total = 0
    for name in ["fig7", "fig8", "fig9", "fig10", "fig11",
                 "ablation-merging", "ablation-ppd", "ablation-pruning",
                 "ablation-local", "cost-frontier"]:
        runner = EXPERIMENTS[name]
        started = time.perf_counter()
        kwargs = {"scale": scale, "cluster": cluster}
        report = runner(**kwargs)
        elapsed = time.perf_counter() - started
        chunk = report.render() + f"\n[harness wall time: {elapsed:.1f}s]\n"
        verdicts = evaluate_report(name, report)
        if verdicts:
            chunk += "\npaper-claim verdicts:\n" + render_verdicts(verdicts) + "\n"
            held += sum(1 for v in verdicts if v.held)
            total += len(verdicts)
        print(chunk, flush=True)
        chunks.append(chunk)
    summary = f"\npaper claims held: {held}/{total}\n"
    print(summary)
    chunks.append(summary)
    if outfile:
        with open(outfile, "w") as handle:
            handle.write("\n".join(chunks))


if __name__ == "__main__":
    main()
