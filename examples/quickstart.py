"""Quickstart: compute a skyline with the paper's algorithms.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import available_algorithms, skyline
from repro.data import generate


def main():
    # A synthetic workload straight from the paper's evaluation:
    # anti-correlated data is the hard case (big skylines).
    data = generate("anticorrelated", cardinality=5000, dimensionality=4, seed=42)

    # The headline algorithm: grid partitioning + bitstring pruning +
    # multiple independent reducers (MR-GPMRS, paper Section 5).
    result = skyline(data, algorithm="mr-gpmrs", num_reducers=13)

    print(f"dataset: {data.shape[0]} tuples x {data.shape[1]} dimensions")
    print(
        f"skyline: {len(result)} tuples "
        f"({100 * len(result) / data.shape[0]:.1f}% of the data)"
    )
    print(f"simulated 13-node cluster runtime: {result.runtime_s:.3f}s")
    print(f"wall time on this machine:        {result.stats.wall_s:.3f}s")

    # Inspect the algorithm's artifacts: the grid and the pruned
    # bitstring that drove partition elimination.
    grid = result.artifacts["grid"]
    bitstring = result.artifacts["bitstring"]
    print(f"\ngrid: {grid.n} partitions per dimension "
          f"({grid.num_partitions} cells)")
    print(
        f"bitstring: {bitstring.count()} cells survive Equation-2 pruning"
    )
    groups = result.artifacts["independent_groups"]
    print(f"independent partition groups: {len(groups)}")

    # Every algorithm returns the identical skyline; compare a few.
    print("\ncross-checking algorithms:")
    reference = set(result.indices.tolist())
    for name in ("mr-gpsrs", "mr-bnl", "mr-angle", "sfs"):
        other = skyline(data, algorithm=name)
        agree = set(other.indices.tolist()) == reference
        print(
            f"  {name:10s} -> {len(other):5d} tuples, "
            f"agrees: {agree}, simulated {other.runtime_s:.3f}s"
        )

    print(f"\nall registered algorithms: {', '.join(available_algorithms())}")

    # The first few skyline tuples (row index + values).
    print("\nfirst five skyline tuples:")
    for i in range(min(5, len(result))):
        values = ", ".join(f"{v:.3f}" for v in result.values[i])
        print(f"  row {result.indices[i]:5d}: [{values}]")


if __name__ == "__main__":
    main()
