"""Player scouting: maximise everything, and let the hybrid algorithm
pick the execution strategy.

All four stats (points, rebounds, assists, steals) are better when
bigger, so this example exercises the MAX-preference path and the
paper's future-work hybrid (Section 8): it estimates the skyline
fraction from a sample and routes to MR-GPSRS (small skyline) or
MR-GPMRS (large skyline) automatically.

Run:  python examples/player_scouting.py
"""

from repro import skyline
from repro.data import players


def main():
    dataset = players(cardinality=3000, seed=11)
    print(f"scouting {len(dataset)} players on {dataset.columns}\n")

    result = skyline(
        dataset.values,
        algorithm="mr-hybrid",
        prefs="max",  # broadcast: maximise every column
    )

    fraction = result.artifacts["hybrid_estimated_fraction"]
    delegate = result.artifacts["hybrid_delegate"]
    print(
        f"hybrid estimated a skyline fraction of {fraction:.1%} "
        f"and picked {delegate}"
    )
    if "hybrid_num_reducers" in result.artifacts:
        print(f"with {result.artifacts['hybrid_num_reducers']} reducers")

    print(f"\n{len(result)} undominated players:")
    order = (-result.values[:, 0]).argsort()
    header = f"{'player':15s}" + "".join(
        f"{c:>10s}" for c in dataset.columns
    )
    print(header)
    for row in order[:10]:
        idx = result.indices[row]
        stats = "".join(f"{v:10.1f}" for v in result.values[row])
        print(f"{dataset.row_label(idx):15s}{stats}")
    if len(result) > 10:
        print(f"... and {len(result) - 10} more")

    # Compare the hybrid's choice against forcing each algorithm.
    print("\nforcing each grid algorithm on the same query:")
    for name in ("mr-gpsrs", "mr-gpmrs"):
        forced = skyline(dataset.values, algorithm=name, prefs="max")
        marker = " <- hybrid's pick" if name == delegate else ""
        print(
            f"  {name}: simulated {forced.runtime_s:.3f}s, "
            f"{len(forced)} players{marker}"
        )


if __name__ == "__main__":
    main()
