"""Explore the Section 6 cost model against real executions.

For a sweep of dimensionalities this runs MR-GPMRS, reads the
partition-comparison counters of the busiest mapper and reducer, and
prints them next to the closed-form estimates (kappa_mapper /
kappa_reducer) — the paper's Figure 11, as a table. The estimates are
worst-case upper bounds; independent-data mapper measurements should
track them closely.

Run:  python examples/cost_model_explorer.py
"""

from repro import skyline
from repro.bench import format_table
from repro.data import generate
from repro.grid import kappa_mapper, kappa_reducer
from repro.mapreduce import SimulatedCluster
from repro.mapreduce.counters import PARTITION_COMPARES


def measure(distribution: str, cardinality: int, d: int):
    data = generate(distribution, cardinality, d, seed=11)
    tpp = min(512, max(4, cardinality // 2 ** d))
    result = skyline(
        data,
        algorithm="mr-gpmrs",
        cluster=SimulatedCluster(),
        num_reducers=13,
        tpp=tpp,
    )
    skyline_job = result.stats.jobs[1]
    return {
        "n": result.artifacts["grid"].n,
        "mapper": skyline_job.max_task_counter("map", PARTITION_COMPARES),
        "reducer": skyline_job.max_task_counter("reduce", PARTITION_COMPARES),
    }


def main():
    cardinality = 10_000
    rows = []
    for dist in ("independent", "anticorrelated"):
        for d in (2, 3, 4, 5, 6, 8):
            m = measure(dist, cardinality, d)
            est_map = kappa_mapper(m["n"], d)
            est_red = kappa_reducer(m["n"], d)
            rows.append(
                [
                    dist,
                    d,
                    m["n"],
                    m["mapper"],
                    est_map,
                    m["reducer"],
                    est_red,
                ]
            )
            assert m["mapper"] <= est_map, "estimate must upper-bound"
            assert m["reducer"] <= est_red, "estimate must upper-bound"
    print(
        format_table(
            ["dist", "d", "ppd", "map.meas", "map.est", "red.meas", "red.est"],
            rows,
            title=f"Figure 11 (table form), cardinality {cardinality}",
        )
    )
    print("\nevery measurement is bounded by its estimate, as Section 6 "
          "predicts; independent mappers track the estimate closely.")


if __name__ == "__main__":
    main()
