"""Reducer scaling study — a miniature of the paper's Figure 10.

Sweeps the MR-GPMRS reducer count on an easy (independent) and a hard
(anti-correlated) workload and prints the runtime series. Expect the
paper's shape: flat on independent data, clearly improving on
anti-correlated data with the biggest jump from 1 reducer (= MR-GPSRS)
to 5.

Run:  python examples/reducer_scaling.py
"""

from repro import skyline
from repro.bench import format_series
from repro.data import generate
from repro.mapreduce import SimulatedCluster


def main():
    cluster = SimulatedCluster()  # the paper's 13 nodes
    reducer_counts = [1, 5, 9, 13, 17]
    cardinality, d = 20_000, 8
    tpp = max(4, cardinality // 2 ** d)

    series = {}
    skyline_sizes = {}
    for dist in ("independent", "anticorrelated"):
        data = generate(dist, cardinality, d, seed=10)
        runtimes = []
        for r in reducer_counts:
            if r == 1:
                result = skyline(
                    data, algorithm="mr-gpsrs", cluster=cluster, tpp=tpp
                )
            else:
                result = skyline(
                    data,
                    algorithm="mr-gpmrs",
                    cluster=cluster,
                    num_reducers=r,
                    tpp=tpp,
                )
            runtimes.append(result.runtime_s)
            print(f"  {dist:14s} r={r:2d} -> {result.runtime_s:7.3f}s")
        series[dist] = [round(t, 3) for t in runtimes]
        skyline_sizes[dist] = len(result)

    print()
    print(
        format_series(
            "reducers",
            reducer_counts,
            series,
            title=f"Figure 10 (mini): 8-d, {cardinality} tuples, "
            "simulated seconds (r=1 is MR-GPSRS)",
        )
    )
    print(
        f"\nskyline sizes: independent {skyline_sizes['independent']}, "
        f"anticorrelated {skyline_sizes['anticorrelated']} — the "
        "anti-correlated skyline is what multiple reducers parallelise."
    )


if __name__ == "__main__":
    main()
