"""PPD explorer: the Section 3.3 trade-off, measured.

"If TPP is too small, comparing grid partitions ... is not worthwhile
compared to checking the tuple dominance within each of those
partitions. Conversely, if TPP is too high, the grid partitioning is
too rough and checking partition dominance cannot prune many
partitions."  (paper Section 3.3)

This example sweeps the partitions-per-dimension over one workload and
prints the numbers behind that sentence: occupancy, Equation-2 pruning
yield, tuples-per-partition, group structure, and the κ cost bounds.
Then it runs MR-GPMRS at each PPD so the sweet spot is visible in
simulated runtime.

Run:  python examples/ppd_explorer.py
"""

import numpy as np

from repro import skyline
from repro.bench import format_table
from repro.data import generate
from repro.grid import ppd_sweep
from repro.mapreduce import SimulatedCluster


def main():
    cardinality, d = 20_000, 3
    data = generate("anticorrelated", cardinality, d, seed=17)
    bounds = (np.zeros(d), np.ones(d))
    candidates = [2, 3, 4, 6, 8, 12]

    print(f"workload: {cardinality} anti-correlated tuples, {d}-d\n")
    for analysis in ppd_sweep(data, candidates, bounds=bounds):
        print(analysis.render())
        print()

    cluster = SimulatedCluster()
    rows = []
    for n in candidates:
        result = skyline(
            data,
            algorithm="mr-gpmrs",
            cluster=cluster,
            ppd=n,
            bounds=bounds,
            num_reducers=13,
        )
        rows.append(
            [
                n,
                round(result.runtime_s, 3),
                len(result.artifacts["independent_groups"]),
                result.artifacts["bitstring"].count(),
            ]
        )
    print(
        format_table(
            ["ppd", "sim_runtime_s", "groups", "live_cells"],
            rows,
            title="MR-GPMRS runtime across the same PPD sweep",
        )
    )
    best = min(rows, key=lambda r: r[1])
    print(
        f"\nsweet spot here: n={best[0]} "
        f"({best[1]}s) — too coarse wastes pruning, too fine drowns in "
        "partition comparisons, exactly the Section 3.3 trade-off."
    )


if __name__ == "__main__":
    main()
