"""Cluster anatomy: look inside the simulated makespan.

Runs MR-GPMRS on an anti-correlated workload and renders the schedule
the cluster model implies — which mapper ran on which slot, how long
the shuffle took, how the reducer wave parallelised — as an ASCII
Gantt chart. Then re-runs with a single reducer to show the serial
bottleneck MR-GPSRS suffers on the same data.

Run:  python examples/cluster_anatomy.py
"""

from repro import skyline
from repro.data import generate
from repro.mapreduce import SimulatedCluster
from repro.mapreduce.trace import build_schedule, render_gantt


def main():
    cluster = SimulatedCluster(num_nodes=4, reduce_slots_per_node=2)
    data = generate("anticorrelated", 12_000, 6, seed=3)
    print(
        f"workload: {data.shape[0]} tuples x {data.shape[1]} dims "
        f"(anti-correlated), cluster: {cluster.num_nodes} nodes\n"
    )

    for label, kwargs in (
        ("MR-GPMRS, 8 reducers", dict(algorithm="mr-gpmrs", num_reducers=8)),
        ("MR-GPSRS (single reducer)", dict(algorithm="mr-gpsrs")),
    ):
        result = skyline(data, cluster=cluster, **kwargs)
        print(f"--- {label}: skyline {len(result)}, "
              f"simulated {result.runtime_s:.3f}s ---")
        for job_stats in result.stats.jobs:
            schedule = build_schedule(cluster, job_stats)
            print(render_gantt(schedule, width=56))
            print()

    print(
        "Read the charts: '#' is busy slot time, '~' is shuffle. The "
        "single-reducer run ends in one long reduce bar; MR-GPMRS "
        "splits the same work across the reduce slots."
    )


if __name__ == "__main__":
    main()
