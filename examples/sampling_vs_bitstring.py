"""Sampling (SKY-MR) vs the bitstring (MR-GPMRS) — the paper's
related-work argument, measured.

"Park et al. propose another MapReduce skyline algorithm SKY-MR.
Before starting MapReduce, SKY-MR obtains a random sample of the
entire data set and builds a quadtree for the sample to identify
dominated sampled regions. In contrast, the bitstring used in this
work does not require sampling, and it is built in parallel by
MapReduce."  (paper Section 2.2)

This example puts the two pruning devices side by side on the same
workloads: how many tuples each prunes before the shuffle, how many
bytes travel, and what the end-to-end simulated runtime is.

Run:  python examples/sampling_vs_bitstring.py
"""

from repro import skyline
from repro.bench import format_table
from repro.data import generate
from repro.mapreduce import SimulatedCluster
from repro.mapreduce.counters import TUPLES_PRUNED_BY_BITSTRING


def measure(algorithm: str, data, cluster):
    result = skyline(data, algorithm=algorithm, cluster=cluster)
    pruned = sum(
        job.counters[TUPLES_PRUNED_BY_BITSTRING]
        for job in result.stats.jobs
    )
    return {
        "runtime_s": round(result.runtime_s, 3),
        "pruned": pruned,
        "shuffle_MB": round(result.stats.total_shuffle_bytes() / 1e6, 3),
        "skyline": len(result),
        "artifacts": result.artifacts,
    }


def main():
    cluster = SimulatedCluster()
    cardinality = 15_000
    rows = []
    for dist, d in (
        ("correlated", 4),
        ("independent", 4),
        ("anticorrelated", 4),
    ):
        data = generate(dist, cardinality, d, seed=13)
        grid = measure("mr-gpmrs", data, cluster)
        sample = measure("sky-mr", data, cluster)
        rows.append(
            [
                f"{dist}",
                grid["runtime_s"],
                sample["runtime_s"],
                grid["pruned"],
                sample["pruned"],
                grid["shuffle_MB"],
                sample["shuffle_MB"],
            ]
        )
        assert grid["skyline"] == sample["skyline"], "algorithms disagree!"
    print(
        format_table(
            [
                "workload",
                "grid_s",
                "skymr_s",
                "grid_pruned",
                "skymr_pruned",
                "grid_MB",
                "skymr_MB",
            ],
            rows,
            title=f"bitstring (MR-GPMRS) vs sampling (SKY-MR), "
            f"{cardinality} tuples, 4-d",
        )
    )
    print(
        "\nReading: both devices prune aggressively on correlated data "
        "(tiny skylines). The sample's sky-filter prunes *tuple-level* "
        "dominance so it can beat the coarse grid on easy data, but it "
        "costs a pre-pass over the data and its guarantee depends on "
        "the sample; the bitstring needs no sample and its Equation-2 "
        "pruning is exact at partition granularity."
    )


if __name__ == "__main__":
    main()
