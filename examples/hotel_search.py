"""Hotel search: the classic skyline motivation, with mixed MIN/MAX
preferences and a look at what the grid machinery did.

A traveller wants hotels that are cheap, close to the beach, and
quiet. No single ranking works — the skyline returns every hotel not
beaten on all three criteria at once.

Run:  python examples/hotel_search.py
"""

from repro import skyline
from repro.data import hotels


def main():
    dataset = hotels(cardinality=4000, seed=7)
    print(f"searching {len(dataset)} hotels")
    print(f"criteria: {', '.join(dataset.columns)} (all minimised)\n")

    result = skyline(
        dataset.values,
        algorithm="mr-gpmrs",
        prefs=["min", "min", "min"],  # price, distance, noise
        num_reducers=8,
    )

    print(f"{len(result)} hotels on the skyline "
          f"(simulated cluster runtime {result.runtime_s:.3f}s)\n")

    order = result.values[:, 0].argsort()
    print(f"{'hotel':14s} {'price':>8s} {'dist km':>8s} {'noise dB':>9s}")
    for row in order[:12]:
        idx = result.indices[row]
        price, dist, noise = result.values[row]
        print(
            f"{dataset.row_label(idx):14s} {price:8.0f} {dist:8.2f} "
            f"{noise:9.1f}"
        )
    if len(result) > 12:
        print(f"... and {len(result) - 12} more")

    # Why so few dominance checks? The bitstring pruned every grid cell
    # that some other occupied cell fully dominates.
    grid = result.artifacts["grid"]
    bitstring = result.artifacts["bitstring"]
    print(
        f"\ngrid {grid.n}^{grid.d} = {grid.num_partitions} cells; "
        f"{bitstring.count()} survive bitstring pruning"
    )

    # Sanity: a dominated hotel can never appear.
    values = dataset.values
    for i in result.indices[:50]:
        cheaper_closer_quieter = (
            (values <= values[i]).all(axis=1)
            & (values < values[i]).any(axis=1)
        )
        assert not cheaper_closer_quieter.any(), "dominated hotel reported!"
    print("verified: no reported hotel is dominated")


if __name__ == "__main__":
    main()
