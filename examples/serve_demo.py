"""Serving demo: an incremental skyline index behind a query frontend.

Run:  python examples/serve_demo.py

Walks the serving layer end to end: build a SkylineIndex over a batch
dataset, absorb live inserts/deletes while the skyline stays exact,
then put the admission-controlled frontend in front of it and replay a
seeded workload — comparing delta maintenance against the
recompute-per-query baseline on the deterministic virtual clock.
"""

import numpy as np

from repro import skyline
from repro.data import generate
from repro.serve import QueryFrontend, SkylineIndex, run_workload


def main():
    # 1. Build the index from a batch dataset. The constructor runs a
    #    full MR-GPMRS batch job and adopts its grid and bitstring.
    data = generate("anticorrelated", cardinality=800, dimensionality=3, seed=7)
    index = SkylineIndex(data, staleness_budget=200)
    print(f"index: {index.describe()}")

    # 2. Absorb deltas. Inserts repair the skyline with two vectorised
    #    dominance passes; deletes of members re-examine only the
    #    dominated-region cells the bitstring says are still viable.
    rng = np.random.default_rng(13)
    for point_id in range(800, 830):
        index.insert(rng.random(3), point_id)
    for point_id in range(0, 60, 2):
        index.delete(point_id)
    print(
        f"after 30 inserts + 30 deletes: skyline {len(index.skyline())}, "
        f"epoch {index.epoch}, budget {index.deltas_since_refresh}/"
        f"{index.staleness_budget}"
    )

    # 3. The maintained skyline is exactly the batch answer.
    snap = index.snapshot()
    batch = skyline(snap.values, algorithm="mr-gpmrs")
    incremental = index.skyline_ids()
    assert np.array_equal(incremental, snap.ids[batch.indices])
    print(f"incremental == batch recompute: True ({len(incremental)} tuples)")

    # 4. Serve queries through the frontend: LRU cache keyed on
    #    (epoch, region), bounded queue, timeouts, load shedding.
    frontend = QueryFrontend(index, queue_capacity=8, timeout_s=0.01)
    region = ((0.0, 0.0, 0.0), (0.5, 0.5, 0.5))
    now = 0.0
    for step in range(50):
        now += 2e-4
        frontend.submit_query(now, region if step % 3 else None)
    responses = frontend.flush()
    served = sum(1 for r in responses if r.status == "ok")
    hits = sum(1 for r in responses if r.cache_hit)
    print(
        f"frontend: served {served}/{len(responses)} queries, "
        f"{hits} cache hits, hit rate "
        f"{100 * frontend.cache.hit_rate():.0f}%"
    )

    # 5. Replay a registered workload under both serving policies.
    print("\nworkload replay (mixed-anticorrelated, seed 0):")
    for policy in ("delta", "recompute"):
        report, _ = run_workload(
            "mixed-anticorrelated", seed=0, policy=policy, scale=0.5
        )
        print(
            f"  {policy:9s} served {report['queries_served']:3d} "
            f"(shed {report['queries_shed']:3d}), "
            f"p99 {1e6 * report['p99_latency_s']:9.1f}us, "
            f"{report['queries_per_s']:7.0f} queries/s"
        )
    print(
        "\ndelta maintenance keeps the skyline exact between batch "
        "refreshes;\nthe recompute baseline pays the full dominance "
        "bill on every miss."
    )


if __name__ == "__main__":
    main()
