"""Micro-benchmarks of the local (single-node) skyline algorithms.

The paper's Section 8 notes that optimising the per-node local skyline
computation is orthogonal future work; these benches quantify the
building blocks: BNL vs presorted SFS vs the bitmap algorithm, on each
distribution. Unlike the figure benches these are classic hot-loop
benchmarks (multiple rounds, real wall time).
"""

import numpy as np
import pytest

from repro.core.bitmap import bitmap_skyline_indices
from repro.core.bnl import bnl_skyline_indices
from repro.core.sfs import sfs_skyline_indices
from repro.data.generators import generate

LOCAL = {
    "bnl": bnl_skyline_indices,
    "sfs": sfs_skyline_indices,
}


@pytest.mark.parametrize("method", sorted(LOCAL))
@pytest.mark.parametrize(
    "distribution", ["independent", "correlated", "anticorrelated"]
)
def test_local_skyline(benchmark, distribution, method):
    data = generate(distribution, 2000, 4, seed=99)
    indices = benchmark(LOCAL[method], data)
    benchmark.extra_info["skyline_size"] = int(indices.shape[0])


@pytest.mark.parametrize("levels", [4, 16, 64])
def test_local_bitmap_discrete(benchmark, levels):
    rng = np.random.default_rng(99)
    data = rng.integers(0, levels, (1500, 4)).astype(float)
    indices = benchmark(bitmap_skyline_indices, data)
    benchmark.extra_info["skyline_size"] = int(indices.shape[0])
    benchmark.extra_info["distinct_levels"] = levels


def test_local_sfs_beats_bnl_on_correlated(benchmark):
    """Presorting shines when the skyline is tiny: the window stays
    small from the first inserts."""
    data = generate("correlated", 4000, 4, seed=7)

    def run():
        import time

        t0 = time.perf_counter()
        sfs_skyline_indices(data)
        sfs_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        bnl_skyline_indices(data)
        bnl_t = time.perf_counter() - t0
        return sfs_t, bnl_t

    sfs_t, bnl_t = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["sfs_s"] = round(sfs_t, 4)
    benchmark.extra_info["bnl_s"] = round(bnl_t, 4)
