"""Telemetry overhead gate: the event bus must be (nearly) free.

Standalone (no pytest-benchmark) so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick

Runs the same pipeline three ways and compares best-of-N wall times:

* ``baseline``  — no bus at all (``bus=None``), the default;
* ``detached``  — a bus attached but with **no subscriber**: every
  emission site must bail on one attribute read before constructing
  any event object, budget **< 2%** over baseline;
* ``attached``  — span tracer + metrics collector subscribed, the full
  telemetry pipeline live, budget **< 10%** over baseline.

Also asserts the observability layer is a pure observer: the skyline
indices and the counter fingerprint of the observed run are
byte-identical to the baseline's.

The serving path gets the same treatment: a ``mixed-anticorrelated``
replay runs baseline / detached / attached (serve tracer + SLO monitor
+ metrics collector), under the same budgets, and the attached
headline report must be byte-identical to the baseline's (the virtual
clock must not see the observers).

Writes ``BENCH_obs.json`` at the repo root; exits non-zero if any
budget or invariant check fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import skyline
from repro.data import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.obs import EventBus, MetricsCollector, SpanTracer

#: Relative budgets (fraction over baseline) per configuration.
BUDGETS = {"detached": 0.02, "attached": 0.10}

#: Absolute slack added to each budget: on sub-second quick runs, OS
#: scheduling jitter alone exceeds 2% — a fixed floor keeps the gate
#: meaningful without flaking.
ABS_SLACK_S = 0.05


def _run_once(data, algorithm, cluster, bus):
    engine = SerialEngine(bus=bus)
    started = time.perf_counter()
    result = skyline(data, algorithm=algorithm, cluster=cluster, engine=engine)
    elapsed = time.perf_counter() - started
    return elapsed, result


def _best_of(repeats, data, algorithm, cluster, make_bus):
    best = None
    result = None
    for _ in range(repeats):
        elapsed, result = _run_once(data, algorithm, cluster, make_bus())
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _serve_run_once(workload, seed, config):
    """One serving replay; returns (wall_s, headline report)."""
    from repro.obs import (
        EventBus,
        MetricsCollector,
        ServeTracer,
        SLOMonitor,
        default_objectives,
        default_window_s,
    )
    from repro.serve.workloads import generate_ops, serve_stream

    stream = generate_ops(workload, seed=seed)
    bus = tracer = None
    if config == "detached":
        bus = EventBus()
    elif config == "attached":
        bus = EventBus()
        bus.subscribe(MetricsCollector())
        bus.subscribe(
            SLOMonitor(
                default_objectives(workload),
                window_s=default_window_s(workload),
            )
        )
        tracer = ServeTracer()
    started = time.perf_counter()
    headline, _ = serve_stream(stream, bus=bus, tracer=tracer)
    elapsed = time.perf_counter() - started
    return elapsed, headline


def _serve_best_of(repeats, workload, seed, config):
    best = None
    headline = None
    for _ in range(repeats):
        elapsed, headline = _serve_run_once(workload, seed, config)
        best = elapsed if best is None else min(best, elapsed)
    return best, headline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--dimensionality", type=int, default=3)
    parser.add_argument("--algorithm", default="mr-gpmrs")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_obs.json",
        ),
    )
    args = parser.parse_args(argv)

    cardinality = args.cardinality or (10_000 if args.quick else 50_000)
    data = generate(
        "anticorrelated", cardinality, args.dimensionality, seed=args.seed
    )
    cluster = SimulatedCluster(num_nodes=13)
    print(
        f"workload: anticorrelated {cardinality} x {args.dimensionality}, "
        f"algorithm {args.algorithm}, best of {args.repeats}"
    )

    def attached_bus():
        bus = EventBus()
        bus.subscribe(SpanTracer())
        bus.subscribe(MetricsCollector())
        return bus

    configs = {
        "baseline": lambda: None,
        "detached": EventBus,  # attached, zero subscribers
        "attached": attached_bus,
    }
    times = {}
    results = {}
    for name, make_bus in configs.items():
        times[name], results[name] = _best_of(
            args.repeats, data, args.algorithm, cluster, make_bus
        )
        print(f"  {name:9s} {times[name] * 1e3:9.2f} ms")

    failures = []
    baseline = times["baseline"]
    overheads = {}
    for name, budget in BUDGETS.items():
        overheads[name] = times[name] / baseline - 1.0
        limit = baseline * (1.0 + budget) + ABS_SLACK_S
        print(
            f"  {name} overhead {overheads[name] * 100:+6.2f}% "
            f"(budget {budget * 100:.0f}% + {ABS_SLACK_S * 1e3:.0f} ms slack)"
        )
        if times[name] > limit:
            failures.append(
                f"{name} bus overhead {overheads[name] * 100:.2f}% exceeds "
                f"the {budget * 100:.0f}% budget"
            )

    # Observation must never perturb the computation.
    base_result = results["baseline"]
    for name in ("detached", "attached"):
        observed = results[name]
        if observed.indices.tolist() != base_result.indices.tolist():
            failures.append(f"{name} bus changed the skyline")
        if (
            observed.stats.counters().as_dict()
            != base_result.stats.counters().as_dict()
        ):
            failures.append(f"{name} bus changed the counter fingerprint")

    # -- serving path ---------------------------------------------------
    from repro.serve.workloads import resolve_workload

    serve_scale = 0.5 if args.quick else 1.0
    serve_workload = resolve_workload(
        "mixed-anticorrelated", scale=serve_scale
    )
    print(
        f"serve workload: {serve_workload.name} x{serve_scale}, "
        f"best of {args.repeats}"
    )
    serve_times = {}
    serve_headlines = {}
    for name in ("baseline", "detached", "attached"):
        serve_times[name], serve_headlines[name] = _serve_best_of(
            args.repeats, serve_workload, args.seed, name
        )
        print(f"  {name:9s} {serve_times[name] * 1e3:9.2f} ms")
    serve_overheads = {}
    for name, budget in BUDGETS.items():
        serve_overheads[name] = serve_times[name] / serve_times["baseline"] - 1.0
        limit = serve_times["baseline"] * (1.0 + budget) + ABS_SLACK_S
        print(
            f"  {name} overhead {serve_overheads[name] * 100:+6.2f}% "
            f"(budget {budget * 100:.0f}% + {ABS_SLACK_S * 1e3:.0f} ms slack)"
        )
        if serve_times[name] > limit:
            failures.append(
                f"serve {name} overhead {serve_overheads[name] * 100:.2f}% "
                f"exceeds the {budget * 100:.0f}% budget"
            )
        if serve_headlines[name] != serve_headlines["baseline"]:
            failures.append(
                f"serve {name} observers perturbed the headline report"
            )

    payload = {
        "workload": {
            "distribution": "anticorrelated",
            "cardinality": cardinality,
            "dimensionality": args.dimensionality,
            "algorithm": args.algorithm,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "best_s": {name: round(t, 6) for name, t in times.items()},
        "overhead_pct": {
            name: round(v * 100, 3) for name, v in overheads.items()
        },
        "budgets_pct": {k: v * 100 for k, v in BUDGETS.items()},
        "abs_slack_s": ABS_SLACK_S,
        "serve": {
            "workload": serve_workload.name,
            "scale": serve_scale,
            "seed": args.seed,
            "best_s": {
                name: round(t, 6) for name, t in serve_times.items()
            },
            "overhead_pct": {
                name: round(v * 100, 3)
                for name, v in serve_overheads.items()
            },
        },
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all telemetry overhead checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
