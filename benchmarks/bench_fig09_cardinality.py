"""Figure 9: effect of cardinality (3-d and 8-d, both distributions).

Paper shape to reproduce: on 3-d independent data MR-GPMRS is slowest
(small skylines don't pay for multiple reducers) and MR-GPSRS best; at
8-d the grid algorithms lead; on 8-d anti-correlated data MR-GPMRS is
clearly best and MR-GPSRS degrades with growing cardinality.
"""

import pytest

from benchmarks.helpers import grid_options, run_figure_cell, runtimes_for

#: Paper sweep 1e5 .. 3e6, scaled by --repro-scale.
PAPER_CARDS = [100_000, 500_000, 1_000_000, 2_000_000, 3_000_000]
ALGORITHMS = ["mr-gpsrs", "mr-gpmrs", "mr-bnl", "mr-angle"]


def scaled_cards(scale):
    return [max(64, int(c * scale)) for c in PAPER_CARDS]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("card_index", [0, 2, 4])
def test_fig9_3d_independent(
    benchmark, paper_cluster, repro_scale, card_index, algorithm
):
    card = scaled_cards(repro_scale)[card_index]
    run_figure_cell(
        benchmark,
        paper_cluster,
        "independent",
        card,
        3,
        algorithm,
        seed=9,
        **grid_options(algorithm, card, 3),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("card_index", [0, 2, 4])
def test_fig9_8d_anticorrelated(
    benchmark, paper_cluster, repro_scale, card_index, algorithm
):
    if algorithm == "mr-angle" and card_index == 4:
        pytest.skip("paper-style DNF: MR-Angle at the largest "
                    "anti-correlated 8-d cardinality")
    card = scaled_cards(repro_scale)[card_index]
    run_figure_cell(
        benchmark,
        paper_cluster,
        "anticorrelated",
        card,
        8,
        algorithm,
        seed=9,
        **grid_options(algorithm, card, 8),
    )


def test_fig9_shape_gpmrs_scales_on_anticorrelated(
    benchmark, paper_cluster, repro_scale
):
    """MR-GPMRS beats MR-GPSRS at the largest 8-d anti-correlated
    cardinality (where the paper's MR-GPSRS DNFs entirely)."""
    card = scaled_cards(repro_scale)[-1]

    times = benchmark.pedantic(
        runtimes_for,
        args=(
            paper_cluster,
            "anticorrelated",
            card,
            8,
            ["mr-gpsrs", "mr-gpmrs"],
        ),
        kwargs={"seed": 9},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in times.items()})
    assert times["mr-gpmrs"] < times["mr-gpsrs"]


def test_fig9_shape_runtime_grows_with_cardinality(
    benchmark, paper_cluster, repro_scale
):
    """Sanity on the sweep: all algorithms cost more at 30x the rows."""
    cards = scaled_cards(repro_scale)

    def run():
        small = runtimes_for(
            paper_cluster, "independent", cards[0], 3, ALGORITHMS, seed=9
        )
        large = runtimes_for(
            paper_cluster, "independent", cards[-1], 3, ALGORITHMS, seed=9
        )
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    for algorithm in ("mr-bnl", "mr-angle"):
        assert large[algorithm] > small[algorithm]
