"""Serving-layer load benchmark: the `serve-gate` CI scenario.

Standalone (no pytest-benchmark) so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick

Replays every registered serve workload through the virtual-clock
frontend and writes ``BENCH_serve.json`` with the headline serving
numbers (throughput, exact p50/p99 latency, cache hit rate, shed and
timeout rates). Every number is on the deterministic virtual clock, so
the gate has no wall-clock noise to tolerate. The checks:

* **determinism** — replaying the same (workload, seed) twice yields
  the identical report, byte for byte;
* **capacity ratio** — with admission limits lifted (huge queue, huge
  timeout) so both policies answer every query, delta maintenance must
  answer at least ``--min-ratio`` (default 10) times more queries per
  virtual second than the recompute-per-query baseline;
* **exactness under load** — after each replay, the incrementally
  maintained skyline is byte-identical to a from-scratch MR-GPMRS
  batch recompute of the final dataset;
* **mechanism liveness** — the bursty workload actually sheds, the
  read-heavy workload actually hits its cache, and p50 <= p99;
* **shard scaling** — the same saturated mixed-anticorrelated stream
  replayed through the sharded fleet (``--max-shards`` counts, default
  1..4) must serve byte-identical final skylines to the single-process
  index at every shard count, with query capacity non-decreasing in
  the shard count and strictly higher at the top than at one shard
  (mutation repair pairs divide across shards; the frontend charges
  the *largest* per-shard repair, so divided work is served capacity);
* **tenant fairness / p99 isolation** — the flash-crowd trace (one hot
  Zipfian tenant at 8x rate) replayed at ``--max-shards`` shards must
  keep the cold tenants' aggregate p99 within ``--p99-isolation``
  (default 2x) of a no-hot-tenant baseline (same stream with the hot
  tenant's queries removed, mutations kept), keep the aggregate shed
  rate within the workload's ``shed_bound``, confine every quota shed
  to the hot tenant, and reproduce byte-identically from
  ``(workload, seed)``.

Exits non-zero if any check fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro import skyline
from repro.serve.workloads import (
    SERVE_WORKLOADS,
    OpStream,
    exact_percentile,
    generate_ops,
    op_tenant,
    run_workload,
    serve_stream,
    tenant_name,
)


def _batch_ids(index) -> list:
    """Ids of a from-scratch batch recompute of the index's data."""
    snap = index.snapshot()
    if len(snap) == 0:
        return []
    result = skyline(snap.values, algorithm="mr-gpmrs")
    return snap.ids[result.indices].tolist()


def _uncontended(workload):
    """Lift admission limits and saturate arrivals: pure capacity."""
    return dataclasses.replace(
        workload,
        queue_capacity=1_000_000,
        timeout_s=1e6,
        mean_interarrival_s=1e-6,
    )


def _shard_sweep(workload, seed: int, max_shards: int):
    """Replay the saturated stream at 1..max_shards shards.

    Returns the single-process reference report plus one report per
    shard count, each annotated with ``exact_vs_single`` (final
    skyline ids byte-identical to the unsharded index) and
    ``effective_shards`` (the plan may merge to fewer groups than
    requested on tiny data).
    """
    saturated = _uncontended(workload)
    reference, ref_frontend = run_workload(saturated, seed=seed)
    ref_ids = ref_frontend.index.skyline_ids().tolist()
    reference["exact"] = ref_ids == _batch_ids(ref_frontend.index)
    sweep = []
    for shards in range(1, max_shards + 1):
        report, frontend = run_workload(saturated, seed=seed, shards=shards)
        report["exact_vs_single"] = (
            frontend.index.skyline_ids().tolist() == ref_ids
        )
        report["effective_shards"] = frontend.index.num_shards
        sweep.append(report)
    return reference, sweep


def _capacity_report(workload, seed: int, policy: str) -> dict:
    """Replay with admission limits lifted: pure serving capacity.

    The arrival process is compressed to near-instantaneous so both
    policies are saturated — throughput then measures how fast the
    server *can* answer, not how fast the workload happened to ask.
    """
    report, frontend = run_workload(
        _uncontended(workload), seed=seed, policy=policy
    )
    report["exact"] = (
        frontend.index.skyline_ids().tolist() == _batch_ids(frontend.index)
    )
    return report


def _cold_p99(frontend, hot: str) -> float:
    """Aggregate p99 latency over every served non-hot-tenant query."""
    latencies = [
        r.latency_s
        for r in frontend.responses
        if r.status == "ok" and r.tenant != hot
    ]
    return exact_percentile(latencies, 0.99)


def _fairness_gate(seed: int, scale: float, shards: int, bound: float):
    """The tenant-isolation check on the flash-crowd trace.

    Replays the trace loaded (hot tenant included) and as a
    no-hot-tenant baseline (the hot tenant's *queries* dropped from
    the same generated stream; its mutations stay so both runs
    maintain the identical index), both at ``shards`` shards, and
    compares the cold tenants' aggregate p99.
    """
    workload = SERVE_WORKLOADS["flash-crowd"].scaled(scale)
    hot = tenant_name(0)
    stream = generate_ops(workload, seed)
    loaded, loaded_frontend = serve_stream(stream, shards=shards)
    repeat, _ = serve_stream(generate_ops(workload, seed), shards=shards)
    baseline_ops = [
        op
        for op in stream.ops
        if not (op[0] == "query" and op_tenant(op) == hot)
    ]
    baseline_stream = OpStream(
        workload=workload,
        seed=seed,
        initial_data=stream.initial_data,
        ops=baseline_ops,
    )
    baseline, baseline_frontend = serve_stream(
        baseline_stream, shards=shards
    )
    cold_loaded = _cold_p99(loaded_frontend, hot)
    cold_baseline = _cold_p99(baseline_frontend, hot)
    shed_rate = loaded["queries_shed"] / max(
        loaded["queries_submitted"], 1
    )
    failures = []
    if loaded != repeat:
        failures.append("fairness: flash-crowd replay is not deterministic")
    if cold_loaded > bound * cold_baseline:
        failures.append(
            f"fairness: cold tenants' p99 {1e6 * cold_loaded:.1f}us "
            f"exceeds {bound}x the no-hot-tenant baseline "
            f"{1e6 * cold_baseline:.1f}us"
        )
    if shed_rate > workload.shed_bound:
        failures.append(
            f"fairness: aggregate shed rate {shed_rate:.3f} exceeds the "
            f"workload bound {workload.shed_bound}"
        )
    hot_shed = loaded["tenants"].get(hot, {}).get("shed", 0)
    if not hot_shed:
        failures.append(
            "fairness: the hot tenant never shed (the gate is vacuous)"
        )
    cold_shed = sum(
        stats["shed"]
        for tenant, stats in loaded["tenants"].items()
        if tenant != hot
    )
    total_shed = hot_shed + cold_shed
    # Shed-fairness: the flash crowd's cost lands on the tenant that
    # caused it. Cold tenants may occasionally hit their own quota,
    # but the overwhelming share of sheds must be the hot tenant's.
    if total_shed and cold_shed / total_shed > 0.1:
        failures.append(
            f"fairness: cold tenants absorbed {cold_shed}/{total_shed} "
            "sheds — more than 10% of the flash crowd's cost"
        )
    record = {
        "workload": workload.name,
        "shards": shards,
        "hot_tenant": hot,
        "p99_isolation_bound": bound,
        "cold_p99_loaded_s": cold_loaded,
        "cold_p99_baseline_s": cold_baseline,
        "p99_ratio": cold_loaded / max(cold_baseline, 1e-12),
        "shed_rate": shed_rate,
        "shed_bound": workload.shed_bound,
        "hot_shed": hot_shed,
        "cold_shed": cold_shed,
        "loaded": loaded,
        "baseline": baseline,
    }
    return record, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workloads")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=10.0,
        help="required delta/recompute capacity ratio",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=4,
        help="sweep sharded capacity at 1..N shards",
    )
    parser.add_argument(
        "--p99-isolation",
        type=float,
        default=2.0,
        help="allowed cold-tenant p99 inflation vs the no-hot-tenant "
        "baseline on the flash-crowd trace",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_serve.json",
        ),
    )
    args = parser.parse_args(argv)
    scale = 0.5 if args.quick else 1.0
    failures = []

    workload_reports = {}
    print(f"serve workloads (seed {args.seed}, scale {scale}):")
    for name in sorted(SERVE_WORKLOADS):
        workload = SERVE_WORKLOADS[name].scaled(scale)
        report, frontend = run_workload(workload, seed=args.seed)
        repeat, _ = run_workload(workload, seed=args.seed)
        if report != repeat:
            failures.append(f"{name}: replay is not deterministic")
        report["exact"] = (
            frontend.index.skyline_ids().tolist()
            == _batch_ids(frontend.index)
        )
        if not report["exact"]:
            failures.append(
                f"{name}: incremental skyline differs from batch recompute"
            )
        if report["p50_latency_s"] > report["p99_latency_s"]:
            failures.append(f"{name}: p50 > p99")
        workload_reports[name] = report
        print(
            f"  {name:24s} served {report['queries_served']:4d} "
            f"(shed {report['queries_shed']}, "
            f"timeout {report['queries_timed_out']}), "
            f"hit rate {100 * report['cache_hit_rate']:5.1f}%, "
            f"p50 {1e6 * report['p50_latency_s']:8.1f}us, "
            f"p99 {1e6 * report['p99_latency_s']:8.1f}us, "
            f"{report['queries_per_s']:8.0f} q/s"
        )

    if workload_reports["bursty-shed"]["queries_shed"] == 0:
        failures.append("bursty-shed workload never shed a query")
    if workload_reports["read-heavy"]["cache_hit_rate"] < 0.3:
        failures.append(
            "read-heavy cache hit rate below 30%: "
            f"{workload_reports['read-heavy']['cache_hit_rate']}"
        )

    capacity_workload = SERVE_WORKLOADS["mixed-anticorrelated"].scaled(scale)
    delta = _capacity_report(capacity_workload, args.seed, "delta")
    recompute = _capacity_report(capacity_workload, args.seed, "recompute")
    ratio = delta["queries_per_s"] / max(recompute["queries_per_s"], 1e-12)
    print(
        "capacity (admission limits lifted, mixed-anticorrelated): "
        f"delta {delta['queries_per_s']:.0f} q/s vs recompute "
        f"{recompute['queries_per_s']:.0f} q/s -> {ratio:.1f}x"
    )
    for label, report in (("delta", delta), ("recompute", recompute)):
        if not report["exact"]:
            failures.append(
                f"capacity/{label}: incremental skyline differs from batch"
            )
        if report["queries_shed"] or report["queries_timed_out"]:
            failures.append(
                f"capacity/{label}: dropped queries with limits lifted"
            )
    if ratio < args.min_ratio:
        failures.append(
            f"delta/recompute capacity ratio {ratio:.2f} below the "
            f"required {args.min_ratio}x"
        )
    if delta["queries_served"] != recompute["queries_served"]:
        failures.append("capacity runs served different query counts")

    single, sweep = _shard_sweep(
        capacity_workload, args.seed, args.max_shards
    )
    print(
        "shard sweep (same stream, mixed-anticorrelated, "
        f"single-process {single['queries_per_s']:.0f} q/s):"
    )
    if not single["exact"]:
        failures.append("shards/single: reference index is not exact")
    for report in sweep:
        shards = report["shards"]
        print(
            f"  shards={shards} (effective {report['effective_shards']}) "
            f"served {report['queries_served']:4d} at "
            f"{report['queries_per_s']:8.0f} q/s, "
            f"exact-vs-single {report['exact_vs_single']}"
        )
        if not report["exact_vs_single"]:
            failures.append(
                f"shards={shards}: final skyline differs from the "
                "single-process index"
            )
        if report["queries_served"] != single["queries_served"]:
            failures.append(
                f"shards={shards}: served a different query count than "
                "the single-process run"
            )
    rates = [report["queries_per_s"] for report in sweep]
    for prev, curr, report in zip(rates, rates[1:], sweep[1:]):
        if curr < prev:
            failures.append(
                f"shard capacity regressed at shards={report['shards']}: "
                f"{curr:.0f} q/s < {prev:.0f} q/s"
            )
    if len(rates) > 1 and rates[-1] <= rates[0]:
        failures.append(
            f"sharding bought no capacity: {rates[0]:.0f} q/s at 1 shard "
            f"vs {rates[-1]:.0f} q/s at {sweep[-1]['shards']}"
        )

    fairness, fairness_failures = _fairness_gate(
        args.seed, scale, args.max_shards, args.p99_isolation
    )
    failures.extend(fairness_failures)
    print(
        f"fairness (flash-crowd, {fairness['shards']} shards): cold p99 "
        f"{1e6 * fairness['cold_p99_loaded_s']:.1f}us loaded vs "
        f"{1e6 * fairness['cold_p99_baseline_s']:.1f}us baseline "
        f"({fairness['p99_ratio']:.2f}x, bound "
        f"{fairness['p99_isolation_bound']}x), shed rate "
        f"{fairness['shed_rate']:.3f} (bound {fairness['shed_bound']})"
    )

    payload = {
        "seed": args.seed,
        "scale": scale,
        "min_ratio": args.min_ratio,
        "workloads": workload_reports,
        "capacity": {
            "delta": delta,
            "recompute": recompute,
            "ratio": ratio,
        },
        "shard_sweep": {
            "max_shards": args.max_shards,
            "single": single,
            "sharded": sweep,
        },
        "fairness": fairness,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all serving checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
