"""Figure 8: effect of dimensionality on anti-correlated data.

Paper shape to reproduce: MR-GPMRS is best in almost all settings
(MR-GPSRS marginally better below d = 5); the baselines cannot finish
in reasonable time at d >= 7 (the paper excludes them from panels (b)
and (d)); MR-GPSRS deteriorates at high dimensionality because its
single reducer drowns in skyline tuples.
"""

import pytest

from benchmarks.helpers import (
    card_high,
    card_low,
    grid_options,
    run_figure_cell,
    runtimes_for,
)

DIMS_LOW = [2, 4, 6]
DIMS_HIGH = [7, 8]
GRID_ALGORITHMS = ["mr-gpsrs", "mr-gpmrs"]
ALL_ALGORITHMS = ["mr-gpsrs", "mr-gpmrs", "mr-bnl", "mr-angle"]


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("d", DIMS_LOW)
def test_fig8_low_dims(benchmark, paper_cluster, repro_scale, d, algorithm):
    card = card_low(repro_scale)
    run_figure_cell(
        benchmark,
        paper_cluster,
        "anticorrelated",
        card,
        d,
        algorithm,
        seed=8,
        **grid_options(algorithm, card, d),
    )


@pytest.mark.parametrize("algorithm", GRID_ALGORITHMS)
@pytest.mark.parametrize("d", DIMS_HIGH)
def test_fig8_high_dims_grid_only(
    benchmark, paper_cluster, repro_scale, d, algorithm
):
    """d >= 7 panels: only the grid algorithms terminate reasonably in
    the paper; the baselines are the DNF entries."""
    card = card_high(repro_scale)
    run_figure_cell(
        benchmark,
        paper_cluster,
        "anticorrelated",
        card,
        d,
        algorithm,
        seed=8,
        **grid_options(algorithm, card, d),
    )


def test_fig8_shape_gpmrs_wins_at_high_d(benchmark, paper_cluster, repro_scale):
    """Headline: multiple reducers pay off once the skyline is large."""
    card = card_high(repro_scale)
    times = benchmark.pedantic(
        runtimes_for,
        args=(paper_cluster, "anticorrelated", card, 8, GRID_ALGORITHMS),
        kwargs={"seed": 8},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in times.items()})
    assert times["mr-gpmrs"] < times["mr-gpsrs"]


def test_fig8_shape_gpsrs_competitive_at_low_d(
    benchmark, paper_cluster, repro_scale
):
    """Below d = 5 the single-reducer variant is marginally better."""
    card = card_low(repro_scale)
    times = benchmark.pedantic(
        runtimes_for,
        args=(paper_cluster, "anticorrelated", card, 3, GRID_ALGORITHMS),
        kwargs={"seed": 8},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in times.items()})
    assert times["mr-gpsrs"] <= times["mr-gpmrs"] * 1.25
