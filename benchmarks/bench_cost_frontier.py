"""Replication vs reducer-input budget: the BSP cost frontier.

Standalone (no pytest-benchmark) so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_cost_frontier.py --quick

Sweeps MR-GPMRS's reducer count under the BSP superstep engine and
reads the engine's :class:`~repro.bsp.cost.CostReport` at each point:
the max-reducer-input budget ``q``, the replication rate ``r``, the
per-superstep h-relation, and Afrati et al.'s all-pairs reference
bound ``r >= n/q``. The checks that make the rounds/replication
trade-off (Lemma 2 / Figure 6) testable rather than assumed:

* the BSP skyline is byte-identical to the SerialEngine skyline at
  every sweep point — the execution model changes cost, never results;
* replication is non-increasing as the reducer-input budget ``q``
  grows — a bigger memory bound needs fewer delivered copies;
* every replication rate is >= 1 — each source record is delivered at
  least once;
* makespan shape: BSP, serial, thread-pool and process-pool engines
  agree on the simulated makespan and the skyline, and the BSP
  barrier-inclusive schedule is at least the plain makespan.

Writes ``BENCH_cost.json`` at the repo root; exits non-zero if any
check fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import skyline
from repro.bsp import BSPEngine, afrati_allpairs_bound, bsp_job_spans
from repro.data import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine


def _bsp_makespan(cluster, stats_jobs) -> float:
    """Barrier-inclusive makespan of the BSP schedule view."""
    total = 0.0
    for stats in stats_jobs:
        _spans, _tracks, makespan = bsp_job_spans(cluster, stats)
        total += makespan
    return total


def _run_point(data, cluster, num_reducers, tpp):
    engine = BSPEngine()
    result = skyline(
        data,
        algorithm="mr-gpmrs",
        cluster=cluster,
        engine=engine,
        num_reducers=num_reducers,
        tpp=tpp,
    )
    cost = engine.cost
    row = {
        "num_reducers": num_reducers,
        "makespan_s": round(result.runtime_s, 4),
        "bsp_makespan_s": round(
            _bsp_makespan(cluster, result.stats.jobs), 4
        ),
        "skyline_size": len(result),
        "indices": result.indices.tolist(),
        "rounds": cost.rounds,
        "supersteps": cost.num_supersteps,
        "barriers": cost.barriers,
        "source_records": cost.source_records,
        "delivered_records": cost.delivered_records,
        "delivered_bytes": cost.delivered_bytes,
        "max_reducer_input_records": cost.max_reducer_input_records,
        "replication_rate": round(cost.replication_rate, 6),
        "h_records": [step.h_records for step in cost.supersteps],
        "allpairs_bound": round(
            afrati_allpairs_bound(
                cost.source_records, cost.max_reducer_input_records
            ),
            6,
        ),
    }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--dimensionality", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_cost.json",
        ),
    )
    args = parser.parse_args(argv)

    cardinality = args.cardinality or (4_000 if args.quick else 20_000)
    data = generate(
        "anticorrelated", cardinality, args.dimensionality, seed=args.seed
    )
    cluster = SimulatedCluster(num_nodes=13)
    tpp = max(4, min(512, cardinality // (2 ** args.dimensionality)))
    print(
        f"workload: anticorrelated {cardinality} x {args.dimensionality}, "
        f"mr-gpmrs under the BSP engine, 13 simulated nodes"
    )

    failures = []
    serial = skyline(data, algorithm="mr-gpmrs", cluster=cluster,
                     num_reducers=13, tpp=tpp)
    serial_indices_13 = serial.indices.tolist()

    reducer_sweep = [1, 2, 4, 8, 13]
    sweep = []
    print("replication vs reducer-input budget:")
    for nr in reducer_sweep:
        row = _run_point(data, cluster, nr, tpp)
        reference = skyline(
            data, algorithm="mr-gpmrs", cluster=cluster,
            num_reducers=nr, tpp=tpp,
        )
        if row["indices"] != reference.indices.tolist():
            failures.append(
                f"BSP skyline differs from serial at {nr} reducers"
            )
        sweep.append(row)
        print(
            f"  reducers {nr:3d}: q={row['max_reducer_input_records']:6d} "
            f"r={row['replication_rate']:.4f} "
            f"(all-pairs bound {row['allpairs_bound']:.4f}), "
            f"{row['rounds']} rounds / {row['supersteps']} supersteps"
        )

    for row in sweep:
        if row["replication_rate"] < 1.0 - 1e-9:
            failures.append(
                f"replication rate < 1 at {row['num_reducers']} reducers: "
                f"{row['replication_rate']}"
            )
        if row["bsp_makespan_s"] < row["makespan_s"] - 1e-9:
            failures.append(
                f"barrier-inclusive makespan below plain makespan at "
                f"{row['num_reducers']} reducers"
            )
    by_budget = sorted(
        sweep, key=lambda row: row["max_reducer_input_records"]
    )
    rates = [row["replication_rate"] for row in by_budget]
    if any(b > a + 1e-9 for a, b in zip(rates, rates[1:])):
        failures.append(
            "replication rate not non-increasing as the reducer-input "
            f"budget grows: {rates} (q ascending)"
        )

    print("makespan shape across engines (13 reducers):")
    engine_rows = {}
    for name, factory in (
        ("serial", lambda: None),
        ("bsp", BSPEngine),
        ("threads", lambda: ThreadPoolEngine(max_workers=4)),
        ("processes", lambda: ProcessPoolEngine(max_workers=2)),
    ):
        result = skyline(
            data, algorithm="mr-gpmrs", cluster=cluster,
            engine=factory(), num_reducers=13, tpp=tpp,
        )
        engine_rows[name] = {
            "makespan_s": round(result.runtime_s, 4),
            "skyline_size": len(result),
        }
        print(f"  {name:10s} makespan {result.runtime_s:8.3f}s")
        if result.indices.tolist() != serial_indices_13:
            failures.append(f"{name} engine changed the skyline")
        if abs(result.runtime_s - serial.runtime_s) > 1e-9:
            failures.append(
                f"{name} engine changed the simulated makespan "
                f"({serial.runtime_s}s -> {result.runtime_s}s)"
            )

    for row in sweep:
        row.pop("indices")
    payload = {
        "workload": {
            "distribution": "anticorrelated",
            "cardinality": cardinality,
            "dimensionality": args.dimensionality,
            "algorithm": "mr-gpmrs",
            "seed": args.seed,
            "tpp": tpp,
        },
        "reducer_sweep": sweep,
        "engine_makespans": engine_rows,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all cost-frontier checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
