"""Fixtures and options for the pytest-benchmark suite.

Each ``bench_fig*`` module reproduces one figure of the paper's
evaluation. Benchmarked cells run once (``pedantic`` with a single
round — a full MapReduce pipeline is seconds, not microseconds) and
attach the paper's metric (simulated cluster makespan) plus skyline
size to ``extra_info``, so the benchmark table carries the figure data.

Scale: cardinalities default to 1/500 of the paper's (200 and 4000
rows) so the whole suite finishes in minutes; pass
``--repro-scale=0.01`` for the EXPERIMENTS.md scale.
"""

from __future__ import annotations

import pytest

from repro.mapreduce.cluster import SimulatedCluster


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default=0.002,
        type=float,
        help="scaling factor applied to the paper's cardinalities",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return float(request.config.getoption("--repro-scale"))


@pytest.fixture(scope="session")
def paper_cluster():
    """The paper's testbed: 13 nodes, 100 Mbit/s."""
    return SimulatedCluster()
