"""Full competitor comparison beyond the paper's four.

The paper compares MR-GPSRS/MR-GPMRS against MR-BNL and MR-Angle only;
this bench adds the rest of the implemented landscape — MR-SFS,
SKY-MR-lite (the sampling competitor of Park et al.) and the Section-8
hybrid — on the paper's two canonical workloads. All algorithms must
agree exactly on the skyline (asserted), so the interesting column is
``simulated_runtime_s``.
"""

import pytest

from benchmarks.helpers import card_high, figure_cell, grid_options
from repro.bench.harness import run_cell

COMPETITORS = [
    "mr-gpsrs",
    "mr-gpmrs",
    "mr-bnl",
    "mr-sfs",
    "mr-angle",
    "sky-mr",
    "mr-hybrid",
]


@pytest.mark.parametrize("algorithm", COMPETITORS)
@pytest.mark.parametrize(
    "distribution,d", [("independent", 6), ("anticorrelated", 4)]
)
def test_competitor(
    benchmark, paper_cluster, repro_scale, distribution, d, algorithm
):
    card = card_high(repro_scale)
    cell = figure_cell(
        distribution,
        card,
        d,
        algorithm,
        seed=21,
        **grid_options(algorithm, card, d),
    )
    result = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"cluster": paper_cluster},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["simulated_runtime_s"] = round(result.runtime_s, 4)
    benchmark.extra_info["skyline_size"] = result.skyline_size


def test_all_competitors_agree(benchmark, paper_cluster, repro_scale):
    """The non-negotiable: everyone computes the identical skyline."""
    card = card_high(repro_scale)

    def run():
        sizes = {}
        ids = None
        for algorithm in COMPETITORS:
            cell = figure_cell(
                "anticorrelated",
                card,
                4,
                algorithm,
                seed=21,
                **grid_options(algorithm, card, 4),
            )
            result = run_cell(cell, cluster=paper_cluster)
            sizes[algorithm] = result.skyline_size
            if ids is None:
                ids = result.skyline_size
            assert result.skyline_size == ids, algorithm
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(set(sizes.values())) == 1
