"""Columnar block fast path vs record-at-a-time: records/sec.

Standalone (no pytest-benchmark) so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_block_fastpath.py --quick

Two measurements on the Figure-9 low-cardinality workload
(independent, 3-d, 1e5 rows — the paper's smallest sweep point):

* **ingest** — a pass-through MapReduce job (buffering mapper that
  emits its split as one block, identity reducer). Both paths do the
  same shuffle and reduce work, so the throughput difference is purely
  the runtime's per-record cost: record-at-a-time buffering vs handing
  the split to ``map_block`` as one PointSet. This is the fast-path
  speedup itself and what the CI gate checks.
* **algorithm** — end-to-end mr-gpsrs, where map-side skyline
  computation (identical on both paths) dilutes the runtime gain; the
  honest real-world number.

Engine configurations:

* ``serial-record``  — SerialEngine with the block path disabled
  (the pre-fast-path baseline).
* ``serial-block``   — SerialEngine default: whole splits to
  ``map_block`` as PointSets, zero per-tuple Python work.
* ``threads``        — ThreadPoolEngine on the block path.
* ``processes``      — ProcessPoolEngine on the zero-copy substrate
  (splits cross the process boundary as shared-memory descriptors;
  only descriptors and task stats are pickled).
* ``processes-pickled`` — ProcessPoolEngine with ``shm=False``: every
  block is pickled across the boundary (the pre-substrate engine).
  The processes/processes-pickled ratio is the zero-copy win and is
  host-CPU-count independent.

For the ``processes`` engine the run also records the wall-time phase
breakdown (:attr:`ProcessPoolEngine.last_phases`): ``promote_s``
(packing blocks into the arena), ``submit_s`` (pickling descriptors +
enqueue), ``compute_s`` (sum of in-worker task time), ``transfer_s``
(wait time not accounted by compute — the serialization/IPC residue),
and ``collect_s`` (parent-side shuffle + event replay).

Writes ``BENCH_fastpath.json`` at the repo root with throughput and
wall-clock per configuration plus the host's CPU count — the
parallel-engine numbers are only meaningful relative to it. Exits
non-zero if the block path is slower than the record path, or if the
shm gate fails: on a multi-core host the zero-copy process pool must
beat serial-block ingest; on a single core (where a process pool
cannot beat an in-process loop) it must at least beat its own
pickled-transport baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import skyline
from repro.core.pointset import PointSet
from repro.data import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.mapreduce.partitioners import single_partitioner
from repro.mapreduce.splits import contiguous_splits
from repro.mapreduce.types import IdentityReducer, Mapper, TaskContext


class PassThroughMapper(Mapper):
    """Buffer the split, emit it as one block — no algorithm work.

    Mirrors what every skyline mapper's ingestion phase does, so the
    record/block throughput ratio isolates the runtime fast path.
    """

    def setup(self, ctx: TaskContext) -> None:
        self._ids = []
        self._rows = []

    def map(self, key, value, ctx: TaskContext) -> None:
        self._ids.append(int(key))
        self._rows.append(value)

    def map_block(self, points, ctx: TaskContext) -> None:
        ctx.emit(0, points)

    def cleanup(self, ctx: TaskContext) -> None:
        if self._ids:
            ctx.emit(
                0,
                PointSet(
                    np.asarray(self._ids, dtype=np.int64),
                    np.vstack(self._rows),
                ),
            )
            self._ids, self._rows = [], []


def _engines(workers: int):
    return {
        "serial-record": SerialEngine(block_path=False),
        "serial-block": SerialEngine(),
        "threads": ThreadPoolEngine(max_workers=workers),
        "processes": ProcessPoolEngine(max_workers=workers),
        "processes-pickled": ProcessPoolEngine(
            max_workers=workers, shm=False
        ),
    }


def _timed(fn, repeats: int):
    best = None
    out = None
    for _ in range(repeats):
        started = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, out


def bench_ingest(data, engine, num_mappers: int, repeats: int) -> dict:
    def run():
        job = MapReduceJob(
            name="fastpath-ingest",
            splits=contiguous_splits(data, num_mappers),
            mapper_factory=PassThroughMapper,
            reducer_factory=IdentityReducer,
            num_reducers=1,
            partitioner=single_partitioner,
        )
        result = engine.run(job)
        return sum(len(points) for _key, points in result.all_pairs())

    best, total = _timed(run, repeats)
    if total != data.shape[0]:
        raise AssertionError(
            f"ingest dropped records: {total} != {data.shape[0]}"
        )
    out = {
        "engine": repr(engine),
        "wall_s": round(best, 4),
        "records_per_s": round(data.shape[0] / best, 1),
    }
    phases = getattr(engine, "last_phases", None)
    if phases:
        out["phases_s"] = {k: round(v, 6) for k, v in sorted(phases.items())}
    counters = getattr(engine, "shm_counters", None)
    if counters is not None and counters.as_dict():
        out["shm"] = counters.as_dict()
    if hasattr(engine, "shutdown"):
        engine.shutdown()
    return out


def bench_algorithm(data, algorithm: str, engine, repeats: int) -> dict:
    cluster = SimulatedCluster(num_nodes=13)

    def run():
        return skyline(
            data, algorithm=algorithm, cluster=cluster, engine=engine
        )

    best, result = _timed(run, repeats)
    out = {
        "engine": repr(engine),
        "wall_s": round(best, 4),
        "records_per_s": round(data.shape[0] / best, 1),
        "skyline_size": len(result),
    }
    if hasattr(engine, "shutdown"):
        engine.shutdown()
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload + 1 repeat (the CI gate)",
    )
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--dimensionality", type=int, default=3)
    parser.add_argument("--algorithm", default="mr-gpsrs")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--num-mappers", type=int, default=13)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_fastpath.json",
        ),
    )
    args = parser.parse_args(argv)

    cardinality = args.cardinality or (10_000 if args.quick else 100_000)
    repeats = args.repeats or (1 if args.quick else 3)
    data = generate("independent", cardinality, args.dimensionality, seed=9)

    print(
        f"workload: independent {cardinality} x {args.dimensionality}, "
        f"host cpus {os.cpu_count()}, repeats {repeats}"
    )
    ingest = {}
    print("ingest (pass-through job, runtime cost only):")
    for label, engine in _engines(args.workers).items():
        ingest[label] = bench_ingest(data, engine, args.num_mappers, repeats)
        print(
            f"  {label:14s} {ingest[label]['wall_s']:8.4f}s  "
            f"{ingest[label]['records_per_s']:12,.0f} records/s"
        )
    ingest_speedup = (
        ingest["serial-record"]["wall_s"] / ingest["serial-block"]["wall_s"]
    )
    print(f"  block-path ingest speedup: {ingest_speedup:.2f}x")

    algo = {}
    print(f"algorithm (end-to-end {args.algorithm}):")
    for label, engine in _engines(args.workers).items():
        algo[label] = bench_algorithm(data, args.algorithm, engine, repeats)
        print(
            f"  {label:14s} {algo[label]['wall_s']:8.4f}s  "
            f"{algo[label]['records_per_s']:12,.0f} records/s"
        )
    algo_speedup = (
        algo["serial-record"]["wall_s"] / algo["serial-block"]["wall_s"]
    )
    print(f"  block-path end-to-end speedup: {algo_speedup:.2f}x")

    sizes = {r["skyline_size"] for r in algo.values()}
    if len(sizes) != 1:
        print(f"FAIL: engines disagree on skyline size: {sizes}",
              file=sys.stderr)
        return 1

    cpu_count = os.cpu_count() or 1
    shm_vs_pickled = (
        ingest["processes-pickled"]["wall_s"] / ingest["processes"]["wall_s"]
    )
    shm_vs_serial = (
        ingest["serial-block"]["wall_s"] / ingest["processes"]["wall_s"]
    )
    # The shm gate is CPU-count aware: a process pool cannot beat an
    # in-process loop on one core no matter how cheap the transport,
    # so the single-core form gates on what sharding the transport can
    # control — zero-copy beating its own pickled baseline.
    if cpu_count >= 2:
        shm_gate = "processes-vs-serial-block"
        shm_gate_ok = shm_vs_serial >= 1.0
    else:
        shm_gate = "processes-vs-processes-pickled"
        shm_gate_ok = shm_vs_pickled >= 1.0
    print(
        f"  zero-copy vs pickled transport: {shm_vs_pickled:.2f}x, "
        f"vs serial-block: {shm_vs_serial:.2f}x "
        f"(gate: {shm_gate}, {'ok' if shm_gate_ok else 'FAIL'})"
    )

    payload = {
        "workload": {
            "distribution": "independent",
            "cardinality": cardinality,
            "dimensionality": args.dimensionality,
            "algorithm": args.algorithm,
            "seed": 9,
            "num_mappers": args.num_mappers,
        },
        "host": {"cpu_count": cpu_count, "workers": args.workers},
        "ingest": ingest,
        "ingest_block_vs_record_speedup": round(ingest_speedup, 2),
        "ingest_shm_vs_pickled_speedup": round(shm_vs_pickled, 2),
        "ingest_shm_vs_serial_block_speedup": round(shm_vs_serial, 2),
        "shm_gate": {"form": shm_gate, "ok": shm_gate_ok},
        "algorithm": algo,
        "algorithm_block_vs_record_speedup": round(algo_speedup, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.output}")

    if ingest_speedup < 1.0 or algo_speedup < 1.0:
        print(
            f"FAIL: block path slower than record path (ingest "
            f"{ingest_speedup:.2f}x, algorithm {algo_speedup:.2f}x)",
            file=sys.stderr,
        )
        return 1
    if not shm_gate_ok:
        print(
            f"FAIL: shm gate {shm_gate} (zero-copy {shm_vs_pickled:.2f}x "
            f"vs pickled, {shm_vs_serial:.2f}x vs serial-block on "
            f"{cpu_count} cpus)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
