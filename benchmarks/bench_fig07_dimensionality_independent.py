"""Figure 7: effect of dimensionality on independent data.

Paper shape to reproduce: MR-GPSRS performs best overall; MR-GPMRS is
slightly worse at low dimensionality (multi-reducer overhead without a
big skyline to pay for it); at d >= 7 both grid algorithms clearly
beat MR-BNL and MR-Angle, which deteriorate almost exponentially.

Run ``pytest benchmarks/bench_fig07* --benchmark-only`` and compare the
``simulated_runtime_s`` extra-info column per (d, algorithm) cell; the
assertion tests at the bottom pin the headline orderings.
"""

import pytest

from benchmarks.helpers import (
    card_high,
    card_low,
    grid_options as _options,
    run_figure_cell,
    runtimes_for,
)

ALGORITHMS = ["mr-gpsrs", "mr-gpmrs", "mr-bnl", "mr-angle"]
DIMS = [2, 4, 6, 8]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("d", DIMS)
def test_fig7_low_cardinality(benchmark, paper_cluster, repro_scale, d, algorithm):
    card = card_low(repro_scale)
    run_figure_cell(
        benchmark,
        paper_cluster,
        "independent",
        card,
        d,
        algorithm,
        **_options(algorithm, card, d),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("d", [4, 8])
def test_fig7_high_cardinality(benchmark, paper_cluster, repro_scale, d, algorithm):
    card = card_high(repro_scale)
    run_figure_cell(
        benchmark,
        paper_cluster,
        "independent",
        card,
        d,
        algorithm,
        **_options(algorithm, card, d),
    )


def test_fig7_shape_grid_beats_baselines_at_high_d(
    benchmark, paper_cluster, repro_scale
):
    """The paper's headline: at d >= 7 the grid algorithms clearly
    outperform MR-BNL and MR-Angle on independent data."""
    card = card_high(repro_scale)
    times = benchmark.pedantic(
        runtimes_for,
        args=(paper_cluster, "independent", card, 8, ALGORITHMS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in times.items()}
    )
    assert times["mr-gpsrs"] < times["mr-angle"]
    assert times["mr-gpmrs"] < times["mr-angle"]
    assert times["mr-gpmrs"] < times["mr-bnl"]
