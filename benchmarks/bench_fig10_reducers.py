"""Figure 10: effect of the number of reducers in MR-GPMRS.

Paper shape to reproduce (8-d, high cardinality): on independent data
more reducers do not help (slightly worse 1 -> 5 from the extra
overhead); on anti-correlated data more reducers clearly shorten the
runtime, with the largest jump when going from one reducer (MR-GPSRS)
to five.
"""

import pytest

from benchmarks.helpers import card_high, figure_cell, grid_options
from repro.bench.experiments import auto_tpp
from repro.bench.harness import run_cell

REDUCER_COUNTS = [1, 5, 9, 13, 17]


def _cell(distribution, card, reducers):
    tpp = auto_tpp(card, 8)
    if reducers == 1:
        return figure_cell(distribution, card, 8, "mr-gpsrs", seed=10, tpp=tpp)
    return figure_cell(
        distribution, card, 8, "mr-gpmrs", seed=10, num_reducers=reducers, tpp=tpp
    )


@pytest.mark.parametrize("reducers", REDUCER_COUNTS)
@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_fig10_reducer_sweep(
    benchmark, paper_cluster, repro_scale, distribution, reducers
):
    card = card_high(repro_scale)
    cell = _cell(distribution, card, reducers)
    result = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"cluster": paper_cluster},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["simulated_runtime_s"] = round(result.runtime_s, 4)
    benchmark.extra_info["reducers"] = reducers


def test_fig10_shape_anticorrelated_improves_with_reducers(
    benchmark, paper_cluster, repro_scale
):
    """The biggest improvement is 1 -> 5 reducers (paper Section 7.4)."""
    card = card_high(repro_scale)

    def run():
        return {
            r: run_cell(
                _cell("anticorrelated", card, r), cluster=paper_cluster
            ).runtime_s
            for r in (1, 5, 17)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"r{k}": round(v, 4) for k, v in times.items()}
    )
    assert times[5] < times[1]
    assert times[17] <= times[1]


def test_fig10_shape_independent_flat(benchmark, paper_cluster, repro_scale):
    """On independent data extra reducers give no real improvement."""
    card = card_high(repro_scale)

    def run():
        return {
            r: run_cell(
                _cell("independent", card, r), cluster=paper_cluster
            ).runtime_s
            for r in (1, 17)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"r{k}": round(v, 4) for k, v in times.items()}
    )
    # within 35% of each other: "the runtime almost does not change"
    assert abs(times[17] - times[1]) <= 0.35 * times[1]
