"""Figure 11: Section 6 cost estimates vs measured partition-wise
comparisons.

Paper shape to reproduce: the estimated mapper costs closely match the
measured ones on independent data (the model assumes independence);
anti-correlated measurements fall below the estimate; reducer estimates
are looser; in every case the estimate is an upper bound.
"""

import pytest

from benchmarks.helpers import figure_cell
from repro.bench.experiments import auto_tpp
from repro.bench.harness import run_cell
from repro.grid.cost import kappa_mapper, kappa_reducer

DIMS = [2, 3, 4, 6, 8]


def _run(paper_cluster, distribution, card, d):
    cell = figure_cell(
        distribution,
        card,
        d,
        "mr-gpmrs",
        seed=11,
        num_reducers=13,
        tpp=auto_tpp(card, d),
    )
    return run_cell(cell, cluster=paper_cluster)


@pytest.mark.parametrize("d", DIMS)
@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_fig11_measured_vs_estimate(
    benchmark, paper_cluster, repro_scale, distribution, d
):
    card = max(64, int(1_000_000 * repro_scale))
    result = benchmark.pedantic(
        _run,
        args=(paper_cluster, distribution, card, d),
        rounds=1,
        iterations=1,
    )
    n = result.artifacts["grid"].n
    est_map = kappa_mapper(n, d)
    est_red = kappa_reducer(n, d)
    benchmark.extra_info.update(
        {
            "ppd": n,
            "measured_mapper": result.max_mapper_compares,
            "estimate_mapper": est_map,
            "measured_reducer": result.max_reducer_compares,
            "estimate_reducer": est_red,
        }
    )
    # Section 6: worst-case assumptions make the estimates upper bounds.
    assert result.max_mapper_compares <= est_map
    assert result.max_reducer_compares <= est_red


def test_fig11_shape_independent_mappers_tight(
    benchmark, paper_cluster, repro_scale
):
    """'For independent data, the estimated costs for mappers closely
    match their counterparts from the real execution.'"""
    card = max(64, int(1_000_000 * repro_scale))

    def run():
        out = {}
        for d in (2, 3, 4):
            result = _run(paper_cluster, "independent", card, d)
            n = result.artifacts["grid"].n
            out[d] = (result.max_mapper_compares, kappa_mapper(n, d))
        return out

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    for d, (measured, estimate) in pairs.items():
        benchmark.extra_info[f"d{d}"] = f"{measured}/{estimate}"
        assert measured <= estimate
        # tight: within a factor of ~3 at bench scale
        assert measured >= estimate / 3 or estimate - measured < 30
