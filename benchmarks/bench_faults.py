"""Makespan vs injected fault rate: the fault-tolerance scenario.

Standalone (no pytest-benchmark) so CI can gate on it cheaply::

    PYTHONPATH=src python benchmarks/bench_faults.py --quick

Runs one algorithm on the paper's simulated 13-node cluster across a
sweep of per-attempt failure rates (plus a straggler scenario with and
without speculative execution) and reports the simulated makespan of
each run. The checks that make the paper's "fault-tolerance" claim
testable rather than assumed:

* the skyline is byte-identical to the fault-free run at every fault
  rate — re-execution changes cost, never results;
* the simulated makespan is monotonically non-decreasing in the fault
  rate — failed attempts occupy slots, exactly as re-execution occupies
  a real cluster;
* speculative execution strictly improves the makespan of a
  straggler-afflicted run — backup copies beat waiting for slow nodes.

Writes ``BENCH_faults.json`` at the repo root; exits non-zero if any
check fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import skyline
from repro.data import generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.faults import FaultPlan, RetryPolicy


def _attempt_totals(jobs) -> dict:
    totals = {"attempts": 0, "failed": 0, "speculative": 0}
    for job in jobs:
        for task in job.map_tasks + job.reduce_tasks:
            totals["attempts"] += task.num_attempts
            totals["failed"] += task.failed_attempts
            totals["speculative"] += task.speculative_attempts
    return totals


def _run(data, algorithm, cluster, faults=None, speculative=False):
    max_attempts = max(4, faults.min_attempts()) if faults else 1
    engine = SerialEngine(
        retry=RetryPolicy(max_attempts=max_attempts),
        faults=faults,
        speculative=speculative,
    )
    result = skyline(data, algorithm=algorithm, cluster=cluster, engine=engine)
    row = {
        "makespan_s": round(result.runtime_s, 4),
        "skyline_size": len(result),
        "indices": result.indices.tolist(),
    }
    row.update(_attempt_totals(result.stats.jobs))
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--dimensionality", type=int, default=3)
    parser.add_argument("--algorithm", default="mr-gpmrs")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_faults.json",
        ),
    )
    args = parser.parse_args(argv)

    cardinality = args.cardinality or (5_000 if args.quick else 50_000)
    data = generate(
        "anticorrelated", cardinality, args.dimensionality, seed=args.seed
    )
    cluster = SimulatedCluster(num_nodes=13)
    print(
        f"workload: anticorrelated {cardinality} x {args.dimensionality}, "
        f"algorithm {args.algorithm}, 13 simulated nodes"
    )

    failures = []
    rates = [0.0, 0.1, 0.25, 0.5]
    sweep = []
    print("makespan vs per-attempt fault rate:")
    for rate in rates:
        faults = (
            FaultPlan(seed=args.seed, fail_rate=rate) if rate > 0 else None
        )
        row = {"fault_rate": rate}
        row.update(_run(data, args.algorithm, cluster, faults=faults))
        sweep.append(row)
        print(
            f"  rate {rate:4.2f}: makespan {row['makespan_s']:8.3f}s, "
            f"{row['attempts']:4d} attempts ({row['failed']} failed), "
            f"skyline {row['skyline_size']}"
        )

    baseline = sweep[0]
    for row in sweep[1:]:
        if row["indices"] != baseline["indices"]:
            failures.append(
                f"fault rate {row['fault_rate']} changed the skyline"
            )
    makespans = [row["makespan_s"] for row in sweep]
    if any(b < a - 1e-9 for a, b in zip(makespans, makespans[1:])):
        failures.append(
            f"makespan not monotonic in fault rate: {makespans}"
        )

    straggler_plan = FaultPlan(
        seed=args.seed, slow_rate=0.3, slow_factor=4.0
    )
    slow = _run(data, args.algorithm, cluster, faults=straggler_plan)
    spec = _run(
        data, args.algorithm, cluster, faults=straggler_plan,
        speculative=True,
    )
    print(
        f"stragglers (30% at 4x): makespan {slow['makespan_s']:.3f}s -> "
        f"{spec['makespan_s']:.3f}s with speculation "
        f"({spec['speculative']} backup copies)"
    )
    if spec["indices"] != baseline["indices"]:
        failures.append("speculative execution changed the skyline")
    if spec["makespan_s"] >= slow["makespan_s"]:
        failures.append(
            "speculation did not improve the straggler makespan "
            f"({slow['makespan_s']}s -> {spec['makespan_s']}s)"
        )

    for row in sweep:
        row.pop("indices")
    slow.pop("indices")
    spec.pop("indices")
    payload = {
        "workload": {
            "distribution": "anticorrelated",
            "cardinality": cardinality,
            "dimensionality": args.dimensionality,
            "algorithm": args.algorithm,
            "seed": args.seed,
        },
        "fault_rate_sweep": sweep,
        "stragglers": {"no_speculation": slow, "speculation": spec},
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all fault-tolerance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
