"""Ablation benches for the design choices DESIGN.md calls out.

* Group merging: computation-cost vs communication-cost (Section 5.4.1;
  the paper's preliminary tests preferred computation-cost merging).
* PPD selection: Equation 4 closed form vs the adaptive Section 3.3
  schemes.
* Bitstring pruning: Equation 2 vs occupancy-only (Equation 1).
"""

import pytest

from benchmarks.helpers import card_high, figure_cell
from repro.bench.experiments import auto_tpp
from repro.bench.harness import run_cell


@pytest.mark.parametrize(
    "strategy", ["computation", "communication", "balanced"]
)
def test_ablation_merging(benchmark, paper_cluster, repro_scale, strategy):
    # A fine 3-d grid yields dozens of groups, so merging down to 4
    # reducers actually engages the strategy under test.
    card = card_high(repro_scale)
    cell = figure_cell(
        "anticorrelated",
        card,
        3,
        "mr-gpmrs",
        seed=54,
        num_reducers=4,
        merge_strategy=strategy,
        ppd=8,
    )
    result = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"cluster": paper_cluster},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["simulated_runtime_s"] = round(result.runtime_s, 4)
    benchmark.extra_info["shuffle_bytes"] = result.shuffle_bytes


@pytest.mark.parametrize(
    "strategy", ["equation4", "adaptive-target", "adaptive-literal"]
)
@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_ablation_ppd(
    benchmark, paper_cluster, repro_scale, distribution, strategy
):
    card = card_high(repro_scale)
    cell = figure_cell(
        distribution,
        card,
        3,
        "mr-gpmrs",
        seed=33,
        num_reducers=13,
        ppd_strategy=strategy,
    )
    result = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"cluster": paper_cluster},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["chosen_ppd"] = result.artifacts["grid"].n
    benchmark.extra_info["simulated_runtime_s"] = round(result.runtime_s, 4)


@pytest.mark.parametrize("prune", [True, False])
@pytest.mark.parametrize("distribution", ["independent", "anticorrelated"])
def test_ablation_pruning(
    benchmark, paper_cluster, repro_scale, distribution, prune
):
    # Equation 2 prunes (n-1)^d of n^d cells: a fine low-d grid is
    # where the bitstring pays (two-thirds of uniform cells pruned).
    card = card_high(repro_scale)
    cell = figure_cell(
        distribution,
        card,
        3,
        "mr-gpsrs",
        seed=44,
        prune_bitstring=prune,
        ppd=8,
    )
    result = benchmark.pedantic(
        run_cell, args=(cell,), kwargs={"cluster": paper_cluster},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["simulated_runtime_s"] = round(result.runtime_s, 4)
    benchmark.extra_info["shuffle_bytes"] = result.shuffle_bytes


def test_ablation_pruning_shape(benchmark, paper_cluster, repro_scale):
    """Equation 2 must strictly reduce shuffled bytes on independent
    data (dominated corner cells never travel)."""
    card = card_high(repro_scale)

    def run():
        out = {}
        for prune in (True, False):
            cell = figure_cell(
                "independent",
                card,
                3,
                "mr-gpsrs",
                seed=44,
                prune_bitstring=prune,
                ppd=8,
            )
            out[prune] = run_cell(cell, cluster=paper_cluster)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[True].shuffle_bytes < results[False].shuffle_bytes
    assert results[True].skyline_size == results[False].skyline_size
