"""Micro-benchmarks of the MapReduce substrate itself.

Not a paper figure — these keep the runtime honest: engine overhead per
task, shuffle grouping, bitstring construction and pruning, and the
grid cell-assignment kernel that every mapper runs.
"""

import numpy as np
import pytest

from repro.data.generators import generate
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.splits import kv_splits
from repro.mapreduce.types import Mapper, Reducer


class PassMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key % 8, value)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(values))


def test_engine_overhead_per_record(benchmark):
    pairs = [(i, i) for i in range(5000)]

    def run():
        job = MapReduceJob(
            name="overhead",
            splits=kv_splits(pairs, 8),
            mapper_factory=PassMapper,
            reducer_factory=CountReducer,
            num_reducers=4,
        )
        return SerialEngine().run(job)

    result = benchmark(run)
    assert sum(v for _, v in result.all_pairs()) == 5000


@pytest.mark.parametrize("n,d", [(8, 2), (4, 4), (2, 10)])
def test_bitstring_build_and_prune(benchmark, n, d):
    data = generate("independent", 20_000, d, seed=1)
    grid = Grid.unit(n, d)

    def run():
        return Bitstring.from_data(grid, data).prune_dominated()

    pruned = benchmark(run)
    benchmark.extra_info["cells"] = grid.num_partitions
    benchmark.extra_info["surviving"] = pruned.count()


def test_cell_assignment_kernel(benchmark):
    data = generate("independent", 100_000, 6, seed=2)
    grid = Grid.unit(3, 6)
    cells = benchmark(grid.cell_indices, data)
    assert cells.shape == (100_000,)


def test_shuffle_grouping(benchmark):
    from repro.mapreduce.engine import _group_by_key

    rng = np.random.default_rng(3)
    pairs = [(int(k), i) for i, k in enumerate(rng.integers(0, 500, 20_000))]
    grouped = benchmark(_group_by_key, pairs, True)
    assert len(grouped) == 500
