"""Helpers shared by the figure benchmarks (import-safe, no fixtures)."""

from __future__ import annotations

from repro.bench.experiments import auto_tpp
from repro.bench.harness import Cell, Workload, run_cell
from repro.mapreduce.cluster import SimulatedCluster


def card_low(scale: float) -> int:
    """The paper's low cardinality (1e5), scaled."""
    return max(64, int(100_000 * scale))


def card_high(scale: float) -> int:
    """The paper's high cardinality (2e6), scaled."""
    return max(64, int(2_000_000 * scale))


def grid_options(algorithm: str, cardinality: int, dimensionality: int) -> dict:
    """Per-algorithm options matching the paper's setup (13 reducers
    for MR-GPMRS; a bench-scale TPP for the grid algorithms)."""
    if algorithm == "mr-gpmrs":
        return {
            "num_reducers": 13,
            "tpp": auto_tpp(cardinality, dimensionality),
        }
    if algorithm == "mr-gpsrs":
        return {"tpp": auto_tpp(cardinality, dimensionality)}
    return {}


def figure_cell(
    distribution: str,
    cardinality: int,
    dimensionality: int,
    algorithm: str,
    seed: int = 7,
    **options,
) -> Cell:
    return Cell.make(
        Workload(distribution, cardinality, dimensionality, seed=seed),
        algorithm,
        **options,
    )


def run_figure_cell(
    benchmark,
    cluster: SimulatedCluster,
    distribution: str,
    cardinality: int,
    dimensionality: int,
    algorithm: str,
    seed: int = 7,
    **options,
):
    """Benchmark one figure cell; returns the harness CellResult."""
    cell = figure_cell(
        distribution, cardinality, dimensionality, algorithm, seed, **options
    )
    result = benchmark.pedantic(
        run_cell,
        args=(cell,),
        kwargs={"cluster": cluster},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["simulated_runtime_s"] = round(result.runtime_s, 4)
    benchmark.extra_info["skyline_size"] = result.skyline_size
    benchmark.extra_info["workload"] = cell.workload.label()
    return result


def runtimes_for(
    cluster: SimulatedCluster,
    distribution: str,
    cardinality: int,
    dimensionality: int,
    algorithms,
    seed: int = 7,
) -> dict:
    """Simulated runtimes of several algorithms on one workload."""
    times = {}
    for algorithm in algorithms:
        cell = figure_cell(
            distribution,
            cardinality,
            dimensionality,
            algorithm,
            seed,
            **grid_options(algorithm, cardinality, dimensionality),
        )
        times[algorithm] = run_cell(cell, cluster=cluster).runtime_s
    return times
